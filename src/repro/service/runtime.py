"""The service coordinator: the unmodified protocol over real processes.

:class:`ServiceRuntime` is the *driver* the core phase loops delegate to
when ``network.honest_driver`` is set.  The coordinator process keeps the
base station, the adversary and a complete mirror of every frame (so the
in-process protocol logic — aggregation decisions, veto classification,
pinpointing — runs unchanged); the honest sensors' per-interval work runs
on node-host OS processes (:mod:`repro.service.node`) speaking the
byte-level frame encodings over length-prefixed TCP.

Interval discipline (one ``tick``/``deliver`` round trip per slot):

* ``tick k`` — every host runs its hosted sensors' sends for interval
  ``k`` concurrently, ships cross-host frames peer-to-peer, and reports
  *all* frames up; the coordinator folds them into its mirror store in
  the canonical ``(band, order, subseq)`` order.
* ``deliver k`` — the coordinator ships its own deposits (base-station
  and adversary frames) down, hosts run acceptance, and state deltas
  (tree levels, veto adoptions) come back to keep the mirror exact.

Frames the coordinator deposits get *band 0* before the tick (adversary
hooks that run first in the interval, sends into future intervals) and
*band 2* after it (the tree phase's post-tick adversary) — reproducing
the simulator's chronological deposit order on every inbox.

Revocations are the one piece of registry state that must not drift:
:class:`_SyncingRegistry` wraps the coordinator's registry so every
``revoke_key``/``revoke_sensor`` is replayed on all replicas (the
θ-threshold cascade then re-derives identically everywhere).
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.protocol import ExecutionOutcome, VMATProtocol
from ..errors import ConfigError, HostChannelError, ProtocolError, ServiceError
from ..faults import FaultInjector
from ..faults.plan import FaultPlan, NodeCrash
from ..metrics import Metrics
from ..net.message import VetoMessage
from ..net.node import ConfReceiptRecord
from ..net.transport import SimTransport
from .resilience import (
    DEGRADE_HORIZON,
    ControlTimeouts,
    JournalEntry,
    control_timeout,
    shutdown_grace,
)
from .spec import SUPPORTED_QUERIES, ServiceSpec
from .supervisor import Supervisor
from .wire import RecordChannel, delivery_envelope, envelope_sort_key, \
    ingest_envelope

#: Attack names (CLI-level) -> (strategy registry name, predtest policy).
ATTACKS = {
    "drop": ("drop-minimum", "deny"),
    "junk": ("junk-minimum", "truthful"),
    "spurious-veto": ("spurious-veto", "truthful"),
    "hide": ("hide-and-veto", "truthful"),
}


class CoordinatorTransport(SimTransport):
    """The coordinator's frame store: the full mirror, plus down-shipping.

    Every deposit lands in the in-process store (so the base station and
    the adversary read exactly what the simulator would have shown them);
    deposits addressed to a *hosted* sensor are additionally queued for
    shipment to that sensor's host on the next ``deliver``.
    """

    __slots__ = ("runtime", "phase")

    def __init__(self, runtime: "ServiceRuntime", phase) -> None:
        super().__init__()
        self.runtime = runtime
        self.phase = phase

    def deposit(self, interval, receiver, delivery) -> None:
        super().deposit(interval, receiver, delivery)
        runtime = self.runtime
        host = runtime.host_of.get(receiver)
        if host is None:
            return  # base station or malicious sensor: coordinator-local
        if interval > self.phase.current_interval or not runtime.tick_done:
            band = 0  # lands before the interval's honest sends
        else:
            band = 2  # post-tick (tree-phase adversary): after honest sends
        runtime.order_counter += 1
        env = delivery_envelope(delivery, band, runtime.order_counter, 0)
        runtime.pending_ship.setdefault(host, []).append(env)

    def ingest(self, env) -> None:
        """Fold one host-reported frame into the mirror (no re-shipping)."""
        interval, receiver, _key, delivery = ingest_envelope(self.phase, env)
        super().deposit(interval, receiver, delivery)


class _SyncingRegistry:
    """Registry proxy that replays revocations on every node host.

    Only the two entry points pinpointing uses are intercepted; the
    θ-threshold cascade runs *inside* the registry on each process and
    re-derives the same follow-on revocations deterministically.
    """

    def __init__(self, registry, runtime: "ServiceRuntime") -> None:
        self._registry = registry
        self._runtime = runtime

    def revoke_key(self, index: int, reason: str = "pinpointed"):
        events = self._registry.revoke_key(index, reason=reason)
        self._runtime.sync_revocation("key", index, reason)
        return events

    def revoke_sensor(self, sensor_id: int, reason: str = "pinpointed"):
        events = self._registry.revoke_sensor(sensor_id, reason=reason)
        self._runtime.sync_revocation("sensor", sensor_id, reason)
        return events

    def __getattr__(self, name):
        return getattr(self._registry, name)


class ServiceRuntime:
    """Launches node hosts and drives them in lockstep with the protocol.

    Resilience model (docs/SERVICE.md, "Failure semantics"): every
    control exchange is journaled before it is sent, and the lockstep
    discipline (at most one un-acknowledged record per host) means a
    failed host has acknowledged *exactly* the journal minus the
    in-flight entry.  Recovery is therefore: kill + respawn the host
    (budget permitting), replay the acknowledged prefix — every control
    record drives a deterministic recomputation, so the fresh replica
    converges to the dead incarnation's exact state — then re-issue the
    in-flight record live.  A host that exhausts its restart budget is
    degraded instead: its sensors become synthesized benign crash faults
    and the session completes INCONCLUSIVE-safe.
    """

    def __init__(self, network, spec: ServiceSpec, spawn_hosts: bool = True) -> None:
        spec.validate()
        if not spawn_hosts and spec.control_port == 0:
            raise ConfigError(
                "externally-started hosts need a fixed control_port in the spec"
            )
        self.network = network
        self.spec = spec
        self.spawn_hosts = spawn_hosts
        self.host_of = spec.host_of_map()
        self.channels: Dict[int, RecordChannel] = {}
        self.supervisor: Optional[Supervisor] = None
        self.server: Optional[socket.socket] = None
        self.phase = None
        self._phase_kind: Optional[str] = None
        self.tick_done = False
        self.order_counter = 0
        self.pending_ship: Dict[int, List[tuple]] = {}
        self._interval_started = 0.0
        self._raw_registry = None
        # Resilience state.
        self.timeouts = ControlTimeouts.from_spec(spec)
        self.journal: List[JournalEntry] = []
        self.dead_hosts: set = set()
        self.restarts_used: Dict[int, int] = {}
        self.incarnation: Dict[int, int] = {}
        self.peer_ports: List[int] = []
        self.retry_trace: List[tuple] = []
        self.chaos = None  # ChaosController, attached by run_chaos
        self._spec_json: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _count_wire(self, nbytes: int, frames: int) -> None:
        self.network.metrics.record_wire(nbytes, frames)

    def launch(self) -> None:
        spec = self.spec
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((spec.host, spec.control_port))
        server.listen(spec.processes)
        server.settimeout(control_timeout(spec))
        control_port = server.getsockname()[1]
        child_spec = dataclasses.replace(spec, control_port=control_port)
        spec_json = child_spec.to_json()
        self._spec_json = spec_json

        self.supervisor = Supervisor(grace=shutdown_grace(spec))
        try:
            if self.spawn_hosts:
                for host_index in range(spec.processes):
                    self.incarnation[host_index] = 1
                    extra_env = None
                    if self.chaos is not None:
                        extra_env = self.chaos.spawn_env(host_index, 1)
                    self.supervisor.spawn_host(
                        host_index, spec_json, extra_env=extra_env
                    )
            by_index: Dict[int, RecordChannel] = {}
            peer_ports = [0] * spec.processes
            for _ in range(spec.processes):
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    raise ServiceError(
                        f"only {len(by_index)}/{spec.processes} node hosts "
                        "connected before the control timeout "
                        f"({len(self.supervisor.alive())} still alive)"
                    ) from None
                channel = RecordChannel(
                    conn, on_wire=self._count_wire, timeouts=self.timeouts
                )
                hello = channel.recv()
                if hello[0] != "hello":
                    raise ServiceError(f"expected hello, got {hello[0]!r}")
                _tag, host_index, peer_port = hello
                by_index[host_index] = channel
                peer_ports[host_index] = peer_port
            self.peer_ports = peer_ports
            for i in range(spec.processes):
                self._wire_channel(i, by_index[i])
            ports = tuple(peer_ports)
            for i in range(spec.processes):
                self._send_to(i, ("peers", ports))
            for i in range(spec.processes):
                self._expect_ok(self.channels[i])
        except Exception:
            self.supervisor.shutdown()
            server.close()
            raise
        self.server = server

        network = self.network
        network.transport_factory = lambda phase: CoordinatorTransport(self, phase)
        network.honest_driver = self
        network.broadcast_hook = self._on_broadcast
        self._raw_registry = network.registry
        network.registry = _SyncingRegistry(self._raw_registry, self)

    def finish(self) -> List[str]:
        """Tear everything down; returns (non-fatal) host error strings.

        No recovery is attempted here — a host that cannot answer the
        shutdown request is simply reported.  Exit codes land in
        host-event accounting, except for incarnations the runtime
        killed on purpose (restarts, degradations, chaos): their
        SIGKILL exit status is expected and carries no information.
        """
        errors: List[str] = []
        for i in sorted(self.channels):
            channel = self.channels[i]
            try:
                record = channel.request("shutdown")
                if record[0] == "metrics":
                    self.network.metrics.merge(
                        Metrics.from_dict(json.loads(record[1]))
                    )
                else:
                    errors.append(f"expected metrics record, got {record[0]!r}")
            except ServiceError as exc:
                errors.append(str(exc))
            channel.close()
        self.channels = {}
        if self.supervisor is not None:
            for host_exit in self.supervisor.shutdown_report():
                if host_exit.expected:
                    continue
                if host_exit.host_index >= 0:
                    self.network.metrics.record_host_event(
                        f"host-{host_exit.host_index}.exit:{host_exit.returncode}"
                    )
                if host_exit.returncode != 0:
                    errors.append(
                        f"node host exited with status {host_exit.returncode}"
                    )
            self.supervisor = None
        if self.server is not None:
            self.server.close()
            self.server = None
        network = self.network
        network.transport_factory = None
        network.honest_driver = None
        network.broadcast_hook = None
        if self._raw_registry is not None:
            network.registry = self._raw_registry
            self._raw_registry = None
        return errors

    def _expect_ok(self, channel: RecordChannel) -> None:
        record = channel.recv()
        if record[0] != "ok":
            raise ServiceError(f"expected ok, got {record[0]!r}")

    # ------------------------------------------------------------------
    # Journaled exchanges + host recovery
    # ------------------------------------------------------------------
    def _live_indices(self) -> List[int]:
        return [
            i for i in range(self.spec.processes) if i not in self.dead_hosts
        ]

    def _probe_host(self, i: int) -> None:
        """Liveness probe run between recv poll slices: a reaped child
        means the channel can never produce another record."""
        supervisor = self.supervisor
        if supervisor is None:
            return
        code = supervisor.poll_host(i)
        if code is not None:
            raise HostChannelError(f"host {i} process exited with status {code}")

    def _wire_channel(self, i: int, channel: RecordChannel) -> None:
        channel.liveness = lambda: self._probe_host(i)
        self.channels[i] = channel

    def _send_to(self, i: int, record: tuple) -> None:
        channel = self.channels[i]
        channel.send(*record)
        if self.chaos is not None:
            self.chaos.on_record_sent(self, i, channel)

    def _exchange(self, entry: JournalEntry) -> Dict[int, tuple]:
        """One lockstep control exchange with every live host.

        Journal first, then send to all, then collect from all; hosts
        whose channel fails at either step are recovered *after* the
        healthy hosts' replies are in (their mirrored frames feed a
        restarted host's catch-up).  Hosts that exhaust their restart
        budget are degraded, and the degradation record is itself
        exchanged (and journaled) once the entry completes, so live
        hosts and any future replay install identical crash faults.
        """
        self.journal.append(entry)
        live = self._live_indices()
        replies: Dict[int, tuple] = {}
        failed: List[int] = []
        for i in live:
            try:
                self._send_to(i, entry.record_for(i))
            except HostChannelError:
                failed.append(i)
        for i in live:
            if i in failed:
                continue
            try:
                replies[i] = self.channels[i].recv()
            except HostChannelError:
                failed.append(i)
        newly_dead: List[tuple] = []
        for i in sorted(failed):
            reply = self._recover_host(i, entry, replies, newly_dead)
            if reply is not None:
                replies[i] = reply
        if entry.kind == "tick" and entry.up is None:
            up = [
                env
                for record in replies.values()
                if record and record[0] == "tick-done"
                for env in record[1]
            ]
            up.sort(key=envelope_sort_key)
            entry.up = tuple(up)
        for degrade_info in newly_dead:
            self._announce_degrade(degrade_info)
        return replies

    def _recover_host(
        self,
        i: int,
        entry: JournalEntry,
        replies: Dict[int, tuple],
        newly_dead: List[tuple],
    ) -> Optional[tuple]:
        """Restart host ``i`` and return its reply to the in-flight
        ``entry``, or ``None`` after marking it dead (budget exhausted)."""
        while True:
            if self.restarts_used.get(i, 0) >= self.spec.restart_budget:
                newly_dead.append(self._mark_dead(i))
                return None
            self.restarts_used[i] = self.restarts_used.get(i, 0) + 1
            self.network.metrics.record_host_event(f"host-{i}.restart")
            self.retry_trace.append(("restart", i, self.restarts_used[i]))
            try:
                return self._restart_and_replay(i, entry, replies, newly_dead)
            except HostChannelError:
                continue  # the new incarnation failed too; burn another restart

    def _restart_and_replay(
        self,
        i: int,
        entry: JournalEntry,
        replies: Dict[int, tuple],
        newly_dead: List[tuple],
    ) -> tuple:
        assert self.journal and self.journal[-1] is entry
        old = self.channels.pop(i, None)
        if old is not None:
            old.close()
        supervisor = self.supervisor
        assert supervisor is not None
        supervisor.kill_host(i)
        self.incarnation[i] = self.incarnation.get(i, 1) + 1
        extra_env = None
        if self.chaos is not None:
            extra_env = self.chaos.spawn_env(i, self.incarnation[i])
        assert self._spec_json is not None
        supervisor.spawn_host(i, self._spec_json, extra_env=extra_env)
        assert self.server is not None
        try:
            conn, _addr = self.server.accept()
        except socket.timeout:
            raise HostChannelError(
                f"restarted host {i} did not reconnect within the control timeout"
            ) from None
        channel = RecordChannel(
            conn, on_wire=self._count_wire, timeouts=self.timeouts
        )
        hello = channel.recv()
        if hello[0] != "hello" or hello[1] != i:
            channel.close()
            raise ServiceError(
                f"expected hello from restarted host {i}, got {hello!r}"
            )
        self.peer_ports[i] = hello[2]
        self._wire_channel(i, channel)
        # Replay the acknowledged prefix: deterministic recomputation,
        # replies are read (an "error" record would raise) and discarded.
        for past in self.journal[:-1]:
            self._send_to(i, self._replay_record(past, i))
            channel.recv()
        # Fresh peer plumbing: the new incarnation listens on a new port.
        self._send_to(i, ("peers", tuple(self.peer_ports)))
        self._expect_ok(channel)
        self._renotify_peers(i, entry, replies, newly_dead)
        # Re-issue the in-flight record live and adopt its reply.
        self._send_to(i, self._reissue_record(entry, i, replies))
        return channel.recv()

    def _renotify_peers(
        self,
        restarted: int,
        entry: JournalEntry,
        replies: Dict[int, tuple],
        newly_dead: List[tuple],
    ) -> None:
        """Push the updated port table to every other live host.

        A host that fails *here* already acknowledged the in-flight
        entry, so its recovery re-issues that entry too; the returned
        reply is a deterministic duplicate of the one already collected
        and replaces it in ``replies`` (identical content).
        """
        ports = tuple(self.peer_ports)
        for j in self._live_indices():
            if j == restarted or j not in self.channels:
                continue
            try:
                self._send_to(j, ("peers", ports))
                self._expect_ok(self.channels[j])
            except HostChannelError:
                reply = self._recover_host(j, entry, replies, newly_dead)
                if reply is not None:
                    replies[j] = reply

    def _replay_record(self, past: JournalEntry, i: int) -> tuple:
        if past.kind == "tick":
            assert past.record is not None
            return ("replay-tick", past.record[1], self._tick_foreign(i, past, None))
        return past.record_for(i)

    def _reissue_record(
        self, entry: JournalEntry, i: int, replies: Dict[int, tuple]
    ) -> tuple:
        if entry.kind == "tick":
            assert entry.record is not None
            return (
                "catchup-tick",
                entry.record[1],
                self._tick_foreign(i, entry, replies),
            )
        return entry.record_for(i)

    def _tick_foreign(
        self,
        host_index: int,
        entry: JournalEntry,
        replies: Optional[Dict[int, tuple]],
    ) -> tuple:
        """Frames host ``host_index`` must receive for a tick it re-runs:
        addressed to one of its sensors, sent by a sensor it does not
        itself recompute.  From the completed entry's ``up`` mirror when
        available, else from the in-flight replies collected so far."""
        envs = entry.up
        if envs is None:
            collected = [
                env
                for record in (replies or {}).values()
                if record and record[0] == "tick-done"
                for env in record[1]
            ]
            collected.sort(key=envelope_sort_key)
            envs = tuple(collected)
        host_of = self.host_of
        return tuple(
            env
            for env in envs
            if host_of.get(env[1]) == host_index
            and host_of.get(env[5]) != host_index
        )

    # ------------------------------------------------------------------
    # Degradation: dead host -> synthesized benign crash faults
    # ------------------------------------------------------------------
    def _mark_dead(self, i: int) -> tuple:
        """Declare host ``i`` dead and install its sensors' crash faults
        on the coordinator; returns the info for the journaled announce."""
        self.dead_hosts.add(i)
        channel = self.channels.pop(i, None)
        if channel is not None:
            channel.close()
        if self.supervisor is not None:
            self.supervisor.kill_host(i)
        metrics = self.network.metrics
        metrics.record_host_event(f"host-{i}.degraded")
        self.retry_trace.append(("degrade", i))
        now = max(1, metrics.intervals_elapsed)
        crashed = tuple(
            sensor for sensor, host in sorted(self.host_of.items()) if host == i
        )
        self._install_crash_faults(now, crashed)
        return (i, now, crashed)

    def _install_crash_faults(self, now: int, crashed: Tuple[int, ...]) -> None:
        events = tuple(
            NodeCrash(start=now, end=DEGRADE_HORIZON, node=sensor)
            for sensor in crashed
        )
        network = self.network
        injector = network.fault_injector
        if injector is None:
            injector = FaultInjector(
                FaultPlan(name="host-degradation", events=events),
                seed=self.spec.fault_seed,
            ).attach(network)
        else:
            injector.extend_events(events)
        injector.advance_to(now)

    def _announce_degrade(self, degrade_info: tuple) -> None:
        """Journal + broadcast the degradation so every live host (and
        any future replay) installs the same synthesized crash faults."""
        _i, now, crashed = degrade_info
        replies = self._exchange(
            JournalEntry("degrade", ("degrade", now, crashed))
        )
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"degrade not applied: {record[0]!r}")

    # ------------------------------------------------------------------
    # Cross-process side channels
    # ------------------------------------------------------------------
    def _on_broadcast(self, payload: tuple) -> None:
        replies = self._exchange(JournalEntry("broadcast", ("broadcast", payload)))
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"broadcast not applied: {record[0]!r}")

    def sync_revocation(self, what: str, target: int, reason: str) -> None:
        replies = self._exchange(
            JournalEntry("revoke", ("revoke", what, target, reason))
        )
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"revocation not applied: {record[0]!r}")

    # ------------------------------------------------------------------
    # Driver interface (called by the core phase loops)
    # ------------------------------------------------------------------
    def execution_starting(self) -> None:
        replies = self._exchange(
            JournalEntry("execution-starting", ("execution-starting",))
        )
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"execution reset failed: {record[0]!r}")

    def begin_execution(self, readings, query_name, num_instances, nonce) -> None:
        pairs = tuple(
            (int(node_id), float(value))
            for node_id, value in sorted(readings.items())
        )
        replies = self._exchange(
            JournalEntry(
                "begin-execution",
                ("begin-execution", pairs, query_name, num_instances, nonce),
            )
        )
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"begin-execution failed: {record[0]!r}")

    def phase_begin(self, kind: str, phase, **kwargs) -> None:
        self.phase = phase
        self._phase_kind = kind
        self.tick_done = False
        self.pending_ship = {}
        if kind == "tree":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["depth_bound"], kwargs["variant"],
            )
        elif kind == "aggregation":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["nonce"], kwargs["num_instances"],
            )
        elif kind == "confirmation":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["nonce"], tuple(kwargs["minima"]),
            )
        elif kind == "predicate-reply":
            ref_kind, ref_ident = kwargs["key_ref"]
            record = (
                "phase-begin", kind, phase.num_intervals,
                ref_kind, ref_ident, kwargs["predicate_bytes"],
                kwargs["nonce"], kwargs["reply_hash"],
            )
        else:
            raise ServiceError(f"unknown phase kind {kind!r}")

        replies = self._exchange(JournalEntry("phase-begin", record))
        for reply in replies.values():
            if reply[0] != "phase-begun":
                raise ServiceError(f"phase-begin failed: {reply[0]!r}")
        if kind == "confirmation":
            # Mirror the hosts' initial vetoers: a vetoer has
            # forwarded_veto set and no SOF receipt, which is exactly the
            # pair num_vetoers counts on the coordinator.
            for i in sorted(replies):
                for node_id in replies[i][1]:
                    self.network.nodes[node_id].forwarded_veto = True

    def tick(self, k: int) -> None:
        self._interval_started = time.perf_counter()
        if self.chaos is not None:
            self.chaos.before_tick(self)
        entry = JournalEntry("tick", ("tick", k))
        replies = self._exchange(entry)
        for record in replies.values():
            if record[0] != "tick-done":
                raise ServiceError(f"tick failed: {record[0]!r}")
        # Honest frames are (band 1, sender id, per-host seq): the global
        # sort (done by _exchange when it fills entry.up) reproduces the
        # simulator's ascending-sender send order.
        transport = self.phase.transport
        for env in entry.up or ():
            transport.ingest(env)
        self.tick_done = True

    def deliver(self, k: int) -> None:
        pending = self.pending_ship
        self.pending_ship = {}
        # Journal a record for *every* host index (not just live ones):
        # the per-host down-frames are part of the deterministic replay a
        # future restart needs, whichever host it is for.
        per_host = {
            i: ("deliver", k, tuple(pending.get(i, ())))
            for i in range(self.spec.processes)
        }
        replies = self._exchange(JournalEntry("deliver", per_host=per_host))
        for record in replies.values():
            if record[0] != "deliver-done":
                raise ServiceError(f"deliver failed: {record[0]!r}")
        kind = self._phase_kind
        if kind == "tree":
            for i in sorted(replies):
                for node_id, level, parents in replies[i][1]:
                    node = self.network.nodes[node_id]
                    node.level = level
                    node.parents = list(parents)
        elif kind == "confirmation":
            # Adopters: forwarded_veto plus a sentinel SOF receipt, so
            # num_vetoers (vetoer = forwarded, *no* receipt) stays exact.
            for i in sorted(replies):
                for node_id in replies[i][1]:
                    node = self.network.nodes[node_id]
                    node.forwarded_veto = True
                    node.audit.conf_receipts.append(
                        ConfReceiptRecord(
                            interval=k,
                            message=VetoMessage(
                                sensor_id=0, value=0.0, level=0, mac=b"", instance=0
                            ),
                            in_edge_index=-1,
                            frm=-1,
                        )
                    )
        self.tick_done = False
        self.network.metrics.record_wall_clock(
            kind or "interval", time.perf_counter() - self._interval_started
        )

    def phase_end(self) -> None:
        replies = self._exchange(JournalEntry("phase-end", ("phase-end",)))
        for record in replies.values():
            if record[0] != "ok":
                raise ServiceError(f"phase-end failed: {record[0]!r}")
        self.phase = None
        self._phase_kind = None


# ----------------------------------------------------------------------
# Sessions over the service transport
# ----------------------------------------------------------------------
@dataclass
class ServiceRunResult:
    """Protocol-level outcome of one session (service or simulator leg)."""

    estimate: Optional[float]
    outcomes: List[str]
    revocations: List[Tuple[str, int, str]]  # (kind, target, reason)
    num_executions: int
    metrics: Metrics
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Hosts that exhausted their restart budget and were degraded to
    #: synthesized benign crash faults (service leg only).
    degraded_hosts: Tuple[int, ...] = ()
    #: Restarts actually performed, per host index (service leg only).
    host_restarts: Dict[int, int] = field(default_factory=dict)


def default_readings(spec: ServiceSpec) -> Dict[int, float]:
    """Deterministic readings over all sensors (honest and malicious)."""
    return {
        i: 50.0 + ((i * 7) % 23) + 0.25 * i for i in range(1, spec.num_nodes)
    }


def _build_protocol(spec: ServiceSpec, attack: Optional[str]):
    from ..adversary import Adversary
    from ..adversary.strategies import make_strategy
    from ..faults import FaultInjector

    deployment = spec.build_deployment()
    network = deployment.network
    plan = spec.plan()
    if plan is not None:
        FaultInjector(plan, seed=spec.fault_seed).attach(network)
    adversary = None
    if attack is not None:
        if attack not in ATTACKS:
            raise ConfigError(
                f"unknown attack {attack!r}; known: {sorted(ATTACKS)}"
            )
        strategy_name, predtest = ATTACKS[attack]
        adversary = Adversary(
            network, make_strategy(strategy_name, predtest=predtest), seed=spec.seed
        )
    protocol = VMATProtocol(
        network, adversary,
        depth_bound=spec.depth_bound, tree_variant=spec.tree_variant,
    )
    return deployment, protocol


def _session_loop(
    protocol, query, readings, max_executions, time_metrics=None, runtime=None
):
    """``VMATProtocol.run_session`` semantics, with optional per-execution
    wall-clock sampling (the service leg records; the simulator leg, whose
    timings are meaningless for the comparison, does not).

    When a :class:`ServiceRuntime` is supplied and it has degraded hosts,
    an INCONCLUSIVE execution *ends* the session (estimate ``None``)
    instead of retrying: the crashed sensors never come back, so further
    executions cannot produce a result, and completing without one is the
    documented benign-degradation outcome."""
    executions = []
    for _ in range(max_executions):
        started = time.perf_counter()
        execution = protocol.execute(query, readings)
        if time_metrics is not None:
            time_metrics.record_wall_clock(
                "execution", time.perf_counter() - started
            )
        executions.append(execution)
        if execution.produced_result:
            return executions, execution.estimate
        if not execution.revocations:
            if execution.outcome is ExecutionOutcome.INCONCLUSIVE:
                if runtime is not None and runtime.dead_hosts:
                    return executions, None
                continue
            raise ProtocolError(
                "an execution neither produced a result nor revoked "
                "anything — Theorem 7 violated"
            )
    raise ProtocolError(f"no result after {max_executions} executions")


def _run_result(executions, estimate, metrics, with_latency: bool) -> ServiceRunResult:
    return ServiceRunResult(
        estimate=estimate,
        outcomes=[e.outcome.value for e in executions],
        revocations=[
            (event.kind, event.target, event.reason)
            for e in executions
            for event in e.revocations
        ],
        num_executions=len(executions),
        metrics=metrics,
        latency=metrics.latency_percentiles() if with_latency else {},
    )


def run_service_session(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    readings: Optional[Dict[int, float]] = None,
    max_executions: int = 50,
    external_hosts: bool = False,
) -> ServiceRunResult:
    """One full query session over a loopback service deployment.

    Launches the node hosts, drives executions until one produces a
    result (Theorem 7 semantics), merges every host's metrics, and always
    tears the deployment down — no orphan survives an exception.
    """
    from .node import _query_by_name

    spec.validate()
    if query_name not in SUPPORTED_QUERIES:
        raise ConfigError(
            f"query {query_name!r} not supported by the service runtime; "
            f"supported: {SUPPORTED_QUERIES}"
        )
    deployment, protocol = _build_protocol(spec, attack)
    network = deployment.network
    query = _query_by_name(query_name)
    if readings is None:
        readings = default_readings(spec)

    runtime = ServiceRuntime(network, spec, spawn_hosts=not external_hosts)
    runtime.launch()
    try:
        executions, estimate = _session_loop(
            protocol, query, readings, max_executions,
            time_metrics=network.metrics, runtime=runtime,
        )
    finally:
        errors = runtime.finish()
    if errors:
        raise ServiceError("service teardown reported: " + "; ".join(errors))
    result = _run_result(executions, estimate, network.metrics, with_latency=True)
    result.degraded_hosts = tuple(sorted(runtime.dead_hosts))
    result.host_restarts = dict(sorted(runtime.restarts_used.items()))
    return result


def run_sim_session(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    readings: Optional[Dict[int, float]] = None,
    max_executions: int = 50,
) -> ServiceRunResult:
    """The in-process control leg: the same seeded session ``spec``
    describes, run entirely inside the simulator (no processes)."""
    from .node import _query_by_name

    spec.validate()
    deployment, protocol = _build_protocol(spec, attack)
    query = _query_by_name(query_name)
    if readings is None:
        readings = default_readings(spec)
    executions, estimate = _session_loop(protocol, query, readings, max_executions)
    return _run_result(
        executions, estimate, deployment.network.metrics, with_latency=False
    )


# ----------------------------------------------------------------------
# Simulator-vs-service equivalence
# ----------------------------------------------------------------------
_RUNTIME_ONLY_METRICS = ("wall_clock", "wire_bytes", "wire_frames", "host_events")


def strip_runtime_metrics(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Drop the fields only the service runtime produces (timings, wire
    accounting); everything else must match the simulator bit-for-bit."""
    return {k: v for k, v in snapshot.items() if k not in _RUNTIME_ONLY_METRICS}


@dataclass
class EquivalenceReport:
    matches: bool
    diffs: List[str]
    service: ServiceRunResult
    sim: ServiceRunResult


def run_equivalence(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    max_executions: int = 50,
) -> EquivalenceReport:
    """Run the same seeded session twice — once over node-host processes,
    once in-process — and compare every protocol-level outcome."""
    readings = default_readings(spec)
    service = run_service_session(
        spec, query_name, attack=attack, readings=readings,
        max_executions=max_executions,
    )
    sim = run_sim_session(
        spec, query_name, attack=attack, readings=readings,
        max_executions=max_executions,
    )

    diffs: List[str] = []
    if service.estimate != sim.estimate:
        diffs.append(f"estimate: service={service.estimate} sim={sim.estimate}")
    if service.outcomes != sim.outcomes:
        diffs.append(f"outcomes: service={service.outcomes} sim={sim.outcomes}")
    if service.revocations != sim.revocations:
        diffs.append(
            f"revocations: service={service.revocations} sim={sim.revocations}"
        )
    service_metrics = strip_runtime_metrics(service.metrics.to_dict())
    sim_metrics = strip_runtime_metrics(sim.metrics.to_dict())
    if service_metrics != sim_metrics:
        keys = sorted(
            set(service_metrics) | set(sim_metrics),
        )
        for key in keys:
            left, right = service_metrics.get(key), sim_metrics.get(key)
            if left != right:
                diffs.append(f"metrics[{key}]: service={left!r} sim={right!r}")
    return EquivalenceReport(
        matches=not diffs, diffs=diffs, service=service, sim=sim
    )
