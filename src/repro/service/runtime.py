"""The service coordinator: the unmodified protocol over real processes.

:class:`ServiceRuntime` is the *driver* the core phase loops delegate to
when ``network.honest_driver`` is set.  The coordinator process keeps the
base station, the adversary and a complete mirror of every frame (so the
in-process protocol logic — aggregation decisions, veto classification,
pinpointing — runs unchanged); the honest sensors' per-interval work runs
on node-host OS processes (:mod:`repro.service.node`) speaking the
byte-level frame encodings over length-prefixed TCP.

Interval discipline (one ``tick``/``deliver`` round trip per slot):

* ``tick k`` — every host runs its hosted sensors' sends for interval
  ``k`` concurrently, ships cross-host frames peer-to-peer, and reports
  *all* frames up; the coordinator folds them into its mirror store in
  the canonical ``(band, order, subseq)`` order.
* ``deliver k`` — the coordinator ships its own deposits (base-station
  and adversary frames) down, hosts run acceptance, and state deltas
  (tree levels, veto adoptions) come back to keep the mirror exact.

Frames the coordinator deposits get *band 0* before the tick (adversary
hooks that run first in the interval, sends into future intervals) and
*band 2* after it (the tree phase's post-tick adversary) — reproducing
the simulator's chronological deposit order on every inbox.

Revocations are the one piece of registry state that must not drift:
:class:`_SyncingRegistry` wraps the coordinator's registry so every
``revoke_key``/``revoke_sensor`` is replayed on all replicas (the
θ-threshold cascade then re-derives identically everywhere).
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.protocol import ExecutionOutcome, VMATProtocol
from ..errors import ConfigError, ProtocolError, ServiceError
from ..metrics import Metrics
from ..net.message import VetoMessage
from ..net.node import ConfReceiptRecord
from ..net.transport import SimTransport
from .spec import SUPPORTED_QUERIES, ServiceSpec
from .supervisor import Supervisor
from .wire import RecordChannel, control_timeout, delivery_envelope, \
    envelope_sort_key, ingest_envelope

#: Attack names (CLI-level) -> (strategy registry name, predtest policy).
ATTACKS = {
    "drop": ("drop-minimum", "deny"),
    "junk": ("junk-minimum", "truthful"),
    "spurious-veto": ("spurious-veto", "truthful"),
    "hide": ("hide-and-veto", "truthful"),
}


class CoordinatorTransport(SimTransport):
    """The coordinator's frame store: the full mirror, plus down-shipping.

    Every deposit lands in the in-process store (so the base station and
    the adversary read exactly what the simulator would have shown them);
    deposits addressed to a *hosted* sensor are additionally queued for
    shipment to that sensor's host on the next ``deliver``.
    """

    __slots__ = ("runtime", "phase")

    def __init__(self, runtime: "ServiceRuntime", phase) -> None:
        super().__init__()
        self.runtime = runtime
        self.phase = phase

    def deposit(self, interval, receiver, delivery) -> None:
        super().deposit(interval, receiver, delivery)
        runtime = self.runtime
        host = runtime.host_of.get(receiver)
        if host is None:
            return  # base station or malicious sensor: coordinator-local
        if interval > self.phase.current_interval or not runtime.tick_done:
            band = 0  # lands before the interval's honest sends
        else:
            band = 2  # post-tick (tree-phase adversary): after honest sends
        runtime.order_counter += 1
        env = delivery_envelope(delivery, band, runtime.order_counter, 0)
        runtime.pending_ship.setdefault(host, []).append(env)

    def ingest(self, env) -> None:
        """Fold one host-reported frame into the mirror (no re-shipping)."""
        interval, receiver, _key, delivery = ingest_envelope(self.phase, env)
        super().deposit(interval, receiver, delivery)


class _SyncingRegistry:
    """Registry proxy that replays revocations on every node host.

    Only the two entry points pinpointing uses are intercepted; the
    θ-threshold cascade runs *inside* the registry on each process and
    re-derives the same follow-on revocations deterministically.
    """

    def __init__(self, registry, runtime: "ServiceRuntime") -> None:
        self._registry = registry
        self._runtime = runtime

    def revoke_key(self, index: int, reason: str = "pinpointed"):
        events = self._registry.revoke_key(index, reason=reason)
        self._runtime.sync_revocation("key", index, reason)
        return events

    def revoke_sensor(self, sensor_id: int, reason: str = "pinpointed"):
        events = self._registry.revoke_sensor(sensor_id, reason=reason)
        self._runtime.sync_revocation("sensor", sensor_id, reason)
        return events

    def __getattr__(self, name):
        return getattr(self._registry, name)


class ServiceRuntime:
    """Launches node hosts and drives them in lockstep with the protocol."""

    def __init__(self, network, spec: ServiceSpec, spawn_hosts: bool = True) -> None:
        spec.validate()
        if not spawn_hosts and spec.control_port == 0:
            raise ConfigError(
                "externally-started hosts need a fixed control_port in the spec"
            )
        self.network = network
        self.spec = spec
        self.spawn_hosts = spawn_hosts
        self.host_of = spec.host_of_map()
        self.channels: List[RecordChannel] = []
        self.supervisor: Optional[Supervisor] = None
        self.server: Optional[socket.socket] = None
        self.phase = None
        self._phase_kind: Optional[str] = None
        self.tick_done = False
        self.order_counter = 0
        self.pending_ship: Dict[int, List[tuple]] = {}
        self._interval_started = 0.0
        self._raw_registry = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _count_wire(self, nbytes: int, frames: int) -> None:
        self.network.metrics.record_wire(nbytes, frames)

    def launch(self) -> None:
        spec = self.spec
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((spec.host, spec.control_port))
        server.listen(spec.processes)
        server.settimeout(control_timeout())
        control_port = server.getsockname()[1]
        child_spec = dataclasses.replace(spec, control_port=control_port)
        spec_json = child_spec.to_json()

        self.supervisor = Supervisor()
        try:
            if self.spawn_hosts:
                for host_index in range(spec.processes):
                    self.supervisor.spawn_host(host_index, spec_json)
            by_index: Dict[int, RecordChannel] = {}
            peer_ports = [0] * spec.processes
            for _ in range(spec.processes):
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    raise ServiceError(
                        f"only {len(by_index)}/{spec.processes} node hosts "
                        "connected before the control timeout "
                        f"({len(self.supervisor.alive())} still alive)"
                    ) from None
                channel = RecordChannel(conn, on_wire=self._count_wire)
                hello = channel.recv()
                if hello[0] != "hello":
                    raise ServiceError(f"expected hello, got {hello[0]!r}")
                _tag, host_index, peer_port = hello
                by_index[host_index] = channel
                peer_ports[host_index] = peer_port
            self.channels = [by_index[i] for i in range(spec.processes)]
            ports = tuple(peer_ports)
            for channel in self.channels:
                channel.send("peers", ports)
            for channel in self.channels:
                self._expect_ok(channel)
        except Exception:
            self.supervisor.shutdown()
            server.close()
            raise
        self.server = server

        network = self.network
        network.transport_factory = lambda phase: CoordinatorTransport(self, phase)
        network.honest_driver = self
        network.broadcast_hook = self._on_broadcast
        self._raw_registry = network.registry
        network.registry = _SyncingRegistry(self._raw_registry, self)

    def finish(self) -> List[str]:
        """Tear everything down; returns (non-fatal) host error strings."""
        errors: List[str] = []
        for channel in self.channels:
            try:
                record = channel.request("shutdown")
                if record[0] == "metrics":
                    self.network.metrics.merge(
                        Metrics.from_dict(json.loads(record[1]))
                    )
                else:
                    errors.append(f"expected metrics record, got {record[0]!r}")
            except ServiceError as exc:
                errors.append(str(exc))
            channel.close()
        self.channels = []
        if self.supervisor is not None:
            for code in self.supervisor.shutdown():
                if code != 0:
                    errors.append(f"node host exited with status {code}")
            self.supervisor = None
        if self.server is not None:
            self.server.close()
            self.server = None
        network = self.network
        network.transport_factory = None
        network.honest_driver = None
        network.broadcast_hook = None
        if self._raw_registry is not None:
            network.registry = self._raw_registry
            self._raw_registry = None
        return errors

    def _expect_ok(self, channel: RecordChannel) -> None:
        record = channel.recv()
        if record[0] != "ok":
            raise ServiceError(f"expected ok, got {record[0]!r}")

    def _broadcast_request(self, *parts) -> List[tuple]:
        """Send one record to every host, then collect every reply."""
        for channel in self.channels:
            channel.send(*parts)
        return [channel.recv() for channel in self.channels]

    # ------------------------------------------------------------------
    # Cross-process side channels
    # ------------------------------------------------------------------
    def _on_broadcast(self, payload: tuple) -> None:
        for record in self._broadcast_request("broadcast", payload):
            if record[0] != "ok":
                raise ServiceError(f"broadcast not applied: {record[0]!r}")

    def sync_revocation(self, what: str, target: int, reason: str) -> None:
        for record in self._broadcast_request("revoke", what, target, reason):
            if record[0] != "ok":
                raise ServiceError(f"revocation not applied: {record[0]!r}")

    # ------------------------------------------------------------------
    # Driver interface (called by the core phase loops)
    # ------------------------------------------------------------------
    def execution_starting(self) -> None:
        for record in self._broadcast_request("execution-starting"):
            if record[0] != "ok":
                raise ServiceError(f"execution reset failed: {record[0]!r}")

    def begin_execution(self, readings, query_name, num_instances, nonce) -> None:
        pairs = tuple(
            (int(node_id), float(value))
            for node_id, value in sorted(readings.items())
        )
        replies = self._broadcast_request(
            "begin-execution", pairs, query_name, num_instances, nonce
        )
        for record in replies:
            if record[0] != "ok":
                raise ServiceError(f"begin-execution failed: {record[0]!r}")

    def phase_begin(self, kind: str, phase, **kwargs) -> None:
        self.phase = phase
        self._phase_kind = kind
        self.tick_done = False
        self.pending_ship = {}
        if kind == "tree":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["depth_bound"], kwargs["variant"],
            )
        elif kind == "aggregation":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["nonce"], kwargs["num_instances"],
            )
        elif kind == "confirmation":
            record = (
                "phase-begin", kind, phase.num_intervals,
                kwargs["nonce"], tuple(kwargs["minima"]),
            )
        elif kind == "predicate-reply":
            ref_kind, ref_ident = kwargs["key_ref"]
            record = (
                "phase-begin", kind, phase.num_intervals,
                ref_kind, ref_ident, kwargs["predicate_bytes"],
                kwargs["nonce"], kwargs["reply_hash"],
            )
        else:
            raise ServiceError(f"unknown phase kind {kind!r}")

        replies = self._broadcast_request(*record)
        for reply in replies:
            if reply[0] != "phase-begun":
                raise ServiceError(f"phase-begin failed: {reply[0]!r}")
        if kind == "confirmation":
            # Mirror the hosts' initial vetoers: a vetoer has
            # forwarded_veto set and no SOF receipt, which is exactly the
            # pair num_vetoers counts on the coordinator.
            for reply in replies:
                for node_id in reply[1]:
                    self.network.nodes[node_id].forwarded_veto = True

    def tick(self, k: int) -> None:
        self._interval_started = time.perf_counter()
        replies = self._broadcast_request("tick", k)
        up: List[tuple] = []
        for record in replies:
            if record[0] != "tick-done":
                raise ServiceError(f"tick failed: {record[0]!r}")
            up.extend(record[1])
        # Honest frames are (band 1, sender id, per-host seq): the global
        # sort reproduces the simulator's ascending-sender send order.
        up.sort(key=envelope_sort_key)
        transport = self.phase.transport
        for env in up:
            transport.ingest(env)
        self.tick_done = True

    def deliver(self, k: int) -> None:
        pending = self.pending_ship
        self.pending_ship = {}
        for host_index, channel in enumerate(self.channels):
            channel.send("deliver", k, tuple(pending.get(host_index, ())))
        replies = [channel.recv() for channel in self.channels]
        for record in replies:
            if record[0] != "deliver-done":
                raise ServiceError(f"deliver failed: {record[0]!r}")
        kind = self._phase_kind
        if kind == "tree":
            for record in replies:
                for node_id, level, parents in record[1]:
                    node = self.network.nodes[node_id]
                    node.level = level
                    node.parents = list(parents)
        elif kind == "confirmation":
            # Adopters: forwarded_veto plus a sentinel SOF receipt, so
            # num_vetoers (vetoer = forwarded, *no* receipt) stays exact.
            for record in replies:
                for node_id in record[1]:
                    node = self.network.nodes[node_id]
                    node.forwarded_veto = True
                    node.audit.conf_receipts.append(
                        ConfReceiptRecord(
                            interval=k,
                            message=VetoMessage(
                                sensor_id=0, value=0.0, level=0, mac=b"", instance=0
                            ),
                            in_edge_index=-1,
                            frm=-1,
                        )
                    )
        self.tick_done = False
        self.network.metrics.record_wall_clock(
            kind or "interval", time.perf_counter() - self._interval_started
        )

    def phase_end(self) -> None:
        for record in self._broadcast_request("phase-end"):
            if record[0] != "ok":
                raise ServiceError(f"phase-end failed: {record[0]!r}")
        self.phase = None
        self._phase_kind = None


# ----------------------------------------------------------------------
# Sessions over the service transport
# ----------------------------------------------------------------------
@dataclass
class ServiceRunResult:
    """Protocol-level outcome of one session (service or simulator leg)."""

    estimate: Optional[float]
    outcomes: List[str]
    revocations: List[Tuple[str, int, str]]  # (kind, target, reason)
    num_executions: int
    metrics: Metrics
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)


def default_readings(spec: ServiceSpec) -> Dict[int, float]:
    """Deterministic readings over all sensors (honest and malicious)."""
    return {
        i: 50.0 + ((i * 7) % 23) + 0.25 * i for i in range(1, spec.num_nodes)
    }


def _build_protocol(spec: ServiceSpec, attack: Optional[str]):
    from ..adversary import Adversary
    from ..adversary.strategies import make_strategy
    from ..faults import FaultInjector

    deployment = spec.build_deployment()
    network = deployment.network
    plan = spec.plan()
    if plan is not None:
        FaultInjector(plan, seed=spec.fault_seed).attach(network)
    adversary = None
    if attack is not None:
        if attack not in ATTACKS:
            raise ConfigError(
                f"unknown attack {attack!r}; known: {sorted(ATTACKS)}"
            )
        strategy_name, predtest = ATTACKS[attack]
        adversary = Adversary(
            network, make_strategy(strategy_name, predtest=predtest), seed=spec.seed
        )
    protocol = VMATProtocol(
        network, adversary,
        depth_bound=spec.depth_bound, tree_variant=spec.tree_variant,
    )
    return deployment, protocol


def _session_loop(protocol, query, readings, max_executions, time_metrics=None):
    """``VMATProtocol.run_session`` semantics, with optional per-execution
    wall-clock sampling (the service leg records; the simulator leg, whose
    timings are meaningless for the comparison, does not)."""
    executions = []
    for _ in range(max_executions):
        started = time.perf_counter()
        execution = protocol.execute(query, readings)
        if time_metrics is not None:
            time_metrics.record_wall_clock(
                "execution", time.perf_counter() - started
            )
        executions.append(execution)
        if execution.produced_result:
            return executions, execution.estimate
        if not execution.revocations:
            if execution.outcome is ExecutionOutcome.INCONCLUSIVE:
                continue
            raise ProtocolError(
                "an execution neither produced a result nor revoked "
                "anything — Theorem 7 violated"
            )
    raise ProtocolError(f"no result after {max_executions} executions")


def _run_result(executions, estimate, metrics, with_latency: bool) -> ServiceRunResult:
    return ServiceRunResult(
        estimate=estimate,
        outcomes=[e.outcome.value for e in executions],
        revocations=[
            (event.kind, event.target, event.reason)
            for e in executions
            for event in e.revocations
        ],
        num_executions=len(executions),
        metrics=metrics,
        latency=metrics.latency_percentiles() if with_latency else {},
    )


def run_service_session(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    readings: Optional[Dict[int, float]] = None,
    max_executions: int = 50,
    external_hosts: bool = False,
) -> ServiceRunResult:
    """One full query session over a loopback service deployment.

    Launches the node hosts, drives executions until one produces a
    result (Theorem 7 semantics), merges every host's metrics, and always
    tears the deployment down — no orphan survives an exception.
    """
    from .node import _query_by_name

    spec.validate()
    if query_name not in SUPPORTED_QUERIES:
        raise ConfigError(
            f"query {query_name!r} not supported by the service runtime; "
            f"supported: {SUPPORTED_QUERIES}"
        )
    deployment, protocol = _build_protocol(spec, attack)
    network = deployment.network
    query = _query_by_name(query_name)
    if readings is None:
        readings = default_readings(spec)

    runtime = ServiceRuntime(network, spec, spawn_hosts=not external_hosts)
    runtime.launch()
    try:
        executions, estimate = _session_loop(
            protocol, query, readings, max_executions, time_metrics=network.metrics
        )
    finally:
        errors = runtime.finish()
    if errors:
        raise ServiceError("service teardown reported: " + "; ".join(errors))
    return _run_result(executions, estimate, network.metrics, with_latency=True)


def run_sim_session(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    readings: Optional[Dict[int, float]] = None,
    max_executions: int = 50,
) -> ServiceRunResult:
    """The in-process control leg: the same seeded session ``spec``
    describes, run entirely inside the simulator (no processes)."""
    from .node import _query_by_name

    spec.validate()
    deployment, protocol = _build_protocol(spec, attack)
    query = _query_by_name(query_name)
    if readings is None:
        readings = default_readings(spec)
    executions, estimate = _session_loop(protocol, query, readings, max_executions)
    return _run_result(
        executions, estimate, deployment.network.metrics, with_latency=False
    )


# ----------------------------------------------------------------------
# Simulator-vs-service equivalence
# ----------------------------------------------------------------------
_RUNTIME_ONLY_METRICS = ("wall_clock", "wire_bytes", "wire_frames")


def strip_runtime_metrics(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Drop the fields only the service runtime produces (timings, wire
    accounting); everything else must match the simulator bit-for-bit."""
    return {k: v for k, v in snapshot.items() if k not in _RUNTIME_ONLY_METRICS}


@dataclass
class EquivalenceReport:
    matches: bool
    diffs: List[str]
    service: ServiceRunResult
    sim: ServiceRunResult


def run_equivalence(
    spec: ServiceSpec,
    query_name: str = "min",
    attack: Optional[str] = None,
    max_executions: int = 50,
) -> EquivalenceReport:
    """Run the same seeded session twice — once over node-host processes,
    once in-process — and compare every protocol-level outcome."""
    readings = default_readings(spec)
    service = run_service_session(
        spec, query_name, attack=attack, readings=readings,
        max_executions=max_executions,
    )
    sim = run_sim_session(
        spec, query_name, attack=attack, readings=readings,
        max_executions=max_executions,
    )

    diffs: List[str] = []
    if service.estimate != sim.estimate:
        diffs.append(f"estimate: service={service.estimate} sim={sim.estimate}")
    if service.outcomes != sim.outcomes:
        diffs.append(f"outcomes: service={service.outcomes} sim={sim.outcomes}")
    if service.revocations != sim.revocations:
        diffs.append(
            f"revocations: service={service.revocations} sim={sim.revocations}"
        )
    service_metrics = strip_runtime_metrics(service.metrics.to_dict())
    sim_metrics = strip_runtime_metrics(sim.metrics.to_dict())
    if service_metrics != sim_metrics:
        keys = sorted(
            set(service_metrics) | set(sim_metrics),
        )
        for key in keys:
            left, right = service_metrics.get(key), sim_metrics.get(key)
            if left != right:
                diffs.append(f"metrics[{key}]: service={left!r} sim={right!r}")
    return EquivalenceReport(
        matches=not diffs, diffs=diffs, service=service, sim=sim
    )
