"""Deployment specification for the service runtime (repro.service).

A :class:`ServiceSpec` is the single source of truth shared by the
coordinator and every node-host process: the same spec (shipped to hosts
via the ``REPRO_SERVICE_SPEC`` environment variable) deterministically
rebuilds the same deployment — topology, key material, clocks — on every
process, so only *frames* and *control events* ever cross the wire, never
key material.

The service transport is interval-synchronous and loss-free by contract:
fault kinds whose effects depend on per-frame randomness drawn at the
coordinator (``burst-loss``, ``duplicate``) or that shift frames across
the interval barrier (``clock-drift``) cannot be replayed bit-identically
on replicas and are rejected up front.  Supported kinds — ``crash``,
``link-down``, ``partition``, ``broadcast-loss``, ``broadcast-delay`` —
are windowed on the shared cumulative-interval axis and replay
identically everywhere.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..faults.plan import FaultPlan

SPEC_ENV = "REPRO_SERVICE_SPEC"
METRICS_DIR_ENV = "REPRO_SERVICE_METRICS_DIR"

#: Fault kinds the service transport cannot replay deterministically on
#: replicas (per-frame coordinator RNG or cross-interval frame motion).
UNSUPPORTED_FAULT_KINDS = frozenset({"burst-loss", "duplicate", "clock-drift"})

#: Queries the v1 service runtime can reconstruct on node hosts from the
#: query name alone (no per-query parameters ride the wire yet).
SUPPORTED_QUERIES = ("min", "max")


@dataclass(frozen=True)
class ServiceSpec:
    """Everything needed to rebuild one service deployment anywhere."""

    num_nodes: int = 25
    seed: int = 0
    processes: int = 2
    malicious_ids: Tuple[int, ...] = ()
    depth_bound: int = 6
    pool_size: int = 200
    ring_size: int = 40
    num_synopses: int = 20
    theta: Optional[int] = None
    tree_variant: str = "timestamp"
    multipath: bool = False
    fault_plan: Optional[str] = None  # canonical FaultPlan JSON
    fault_seed: int = 0
    host: str = "127.0.0.1"
    control_port: int = 0
    metrics_dir: Optional[str] = None
    # Resilience knobs (repro.service.resilience).  All timeouts are in
    # seconds.  ``control_timeout_s`` bounds one blocking control-channel
    # exchange end to end (env override: REPRO_SERVICE_TIMEOUT);
    # ``shutdown_grace_s`` is the SIGTERM->SIGKILL grace the supervisor
    # allows (env override: REPRO_SERVICE_GRACE).  Hosts heartbeat every
    # ``heartbeat_interval_s``; total control-channel silence longer than
    # ``detection_window_s`` declares the host unresponsive.  A failed
    # host is restarted (with journal replay) at most ``restart_budget``
    # times per session before it is declared dead and degraded onto
    # synthesized crash faults.  Retries (control connect, peer dials)
    # follow a seed-derived exponential-backoff schedule: up to
    # ``retry_attempts`` tries, delays ``retry_base_s * 2^i`` capped at
    # ``retry_max_s``, each stretched by up to ``retry_jitter`` fraction.
    control_timeout_s: float = 60.0
    shutdown_grace_s: float = 5.0
    heartbeat_interval_s: float = 0.5
    detection_window_s: float = 10.0
    restart_budget: int = 1
    retry_attempts: int = 4
    retry_base_s: float = 0.05
    retry_max_s: float = 0.5
    retry_jitter: float = 0.5
    peer_ack_timeout_s: float = 2.0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.num_nodes < 2:
            raise ConfigError("a service deployment needs at least one sensor")
        if self.processes < 1:
            raise ConfigError("at least one node-host process is required")
        if self.processes > len(self.honest_sensor_ids()):
            raise ConfigError(
                f"{self.processes} processes but only "
                f"{len(self.honest_sensor_ids())} honest sensors to host"
            )
        for mid in self.malicious_ids:
            if not 1 <= mid < self.num_nodes:
                raise ConfigError(f"malicious id {mid} outside 1..{self.num_nodes - 1}")
        if self.tree_variant not in ("timestamp", "hopcount"):
            raise ConfigError(f"unknown tree variant {self.tree_variant!r}")
        for name in (
            "control_timeout_s",
            "shutdown_grace_s",
            "heartbeat_interval_s",
            "detection_window_s",
            "retry_base_s",
            "retry_max_s",
            "peer_ack_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.restart_budget < 0:
            raise ConfigError("restart_budget must be >= 0")
        if self.retry_attempts < 1:
            raise ConfigError("retry_attempts must be >= 1")
        if self.retry_jitter < 0:
            raise ConfigError("retry_jitter must be >= 0")
        if self.fault_plan is not None:
            plan = FaultPlan.from_json(self.fault_plan)
            bad = sorted(set(plan.counts_by_kind()) & UNSUPPORTED_FAULT_KINDS)
            if bad:
                raise ConfigError(
                    f"fault kind(s) {bad} are not replayable over the service "
                    "transport (coordinator-side per-frame randomness or "
                    "cross-interval frame motion); supported kinds: crash, "
                    "link-down, partition, broadcast-loss, broadcast-delay"
                )

    # ------------------------------------------------------------------
    # Deterministic deployment reconstruction
    # ------------------------------------------------------------------
    def build_deployment(self):
        """The deployment every process reconstructs independently.

        Byte-identical everywhere: all inputs are spec fields, and
        :func:`repro.build_deployment` derives key material and topology
        deterministically from them.
        """
        from .. import build_deployment, small_test_config

        config = small_test_config(
            depth_bound=self.depth_bound,
            pool_size=self.pool_size,
            ring_size=self.ring_size,
            num_synopses=self.num_synopses,
        )
        if self.theta is not None:
            config = dataclasses.replace(
                config,
                revocation=dataclasses.replace(config.revocation, theta=self.theta),
            )
        if self.multipath:
            config = dataclasses.replace(
                config,
                network=dataclasses.replace(config.network, multipath=True),
            )
        if config.network.loss_rate > 0.0:
            raise ConfigError("the service transport requires loss_rate == 0")
        return build_deployment(
            num_nodes=self.num_nodes,
            seed=self.seed,
            config=config,
            malicious_ids=self.malicious_ids,
        )

    def plan(self) -> Optional[FaultPlan]:
        if self.fault_plan is None:
            return None
        return FaultPlan.from_json(self.fault_plan)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def honest_sensor_ids(self) -> List[int]:
        """Sensors that were honest at deployment time (ascending)."""
        malicious = set(self.malicious_ids)
        return [i for i in range(1, self.num_nodes) if i not in malicious]

    def hosted_ids(self, host_index: int) -> List[int]:
        """The shard of honest sensors process ``host_index`` hosts.

        Round-robin over the ascending honest id list, so shards are
        balanced and stable under the spec alone.
        """
        if not 0 <= host_index < self.processes:
            raise ConfigError(f"host index {host_index} outside 0..{self.processes - 1}")
        return self.honest_sensor_ids()[host_index :: self.processes]

    def host_of_map(self) -> Dict[int, int]:
        """sensor id -> host index, for every honest-at-deployment sensor."""
        out: Dict[int, int] = {}
        for index, sensor_id in enumerate(self.honest_sensor_ids()):
            out[sensor_id] = index % self.processes
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["malicious_ids"] = list(self.malicious_ids)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServiceSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown ServiceSpec field(s): {unknown}")
        payload = dict(data)
        payload["malicious_ids"] = tuple(payload.get("malicious_ids", ()))
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServiceSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls) -> "ServiceSpec":
        text = os.environ.get(SPEC_ENV)
        if not text:
            raise ConfigError(f"{SPEC_ENV} is not set; node hosts need the spec")
        return cls.from_json(text)
