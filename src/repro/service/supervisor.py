"""Child-process supervision for the service runtime.

The coordinator spawns one OS process per node host and must never leak
them: every exit path — clean shutdown, protocol error, timeout, test
teardown — funnels through :meth:`Supervisor.shutdown`, which escalates
SIGTERM (graceful: hosts flush metrics) to SIGKILL and reaps every child.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from typing import Dict, List, Optional, Sequence


def python_env() -> Dict[str, str]:
    """Environment for a child that must import :mod:`repro`.

    Prepends the package's source root to ``PYTHONPATH`` so hosts work
    under ``PYTHONPATH=src`` checkouts and installed trees alike.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    return env


class Supervisor:
    """Owns a set of child processes and guarantees they are reaped."""

    def __init__(self) -> None:
        self.procs: List[subprocess.Popen] = []

    def spawn(
        self, args: Sequence[str], env: Optional[Dict[str, str]] = None
    ) -> subprocess.Popen:
        proc = subprocess.Popen(
            list(args),
            env=env if env is not None else python_env(),
            stdin=subprocess.DEVNULL,
        )
        self.procs.append(proc)
        return proc

    def spawn_host(self, host_index: int, spec_json: str) -> subprocess.Popen:
        from .spec import SPEC_ENV

        env = python_env()
        env[SPEC_ENV] = spec_json
        return self.spawn(
            [sys.executable, "-m", "repro", "service", "node",
             "--host-index", str(host_index)],
            env=env,
        )

    def alive(self) -> List[subprocess.Popen]:
        return [p for p in self.procs if p.poll() is None]

    def shutdown(self, grace: float = 5.0) -> List[int]:
        """Terminate and reap every child; returns their exit codes.

        SIGTERM first (node hosts trap it to flush metrics and exit 0),
        SIGKILL for anything that outlives the grace period.  Idempotent.
        """
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        codes: List[int] = []
        for proc in self.procs:
            try:
                codes.append(proc.wait(timeout=grace))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
        return codes

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
