"""Child-process supervision for the service runtime.

The coordinator spawns one OS process per node host and must never leak
them: every exit path — clean shutdown, protocol error, timeout, test
teardown — funnels through :meth:`Supervisor.shutdown`, which escalates
SIGTERM (graceful: hosts flush metrics) to SIGKILL and reaps every child.

The resilience layer (``runtime.py``) additionally uses the supervisor as
its process-lifecycle oracle: :meth:`Supervisor.poll_host` backs the
control channel's liveness probe (a crashed child is detected within one
poll slice, not one timeout), :meth:`Supervisor.kill_host` +
:meth:`Supervisor.spawn_host` implement host restart, and
:meth:`Supervisor.shutdown_report` surfaces per-host exit codes into
:class:`~repro.metrics.Metrics` host-event accounting.  Kills issued *by*
the runtime (restart, degradation, chaos) are marked *expected* so the
final report can distinguish them from spontaneous child failures.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

DEFAULT_GRACE = 5.0


def python_env() -> Dict[str, str]:
    """Environment for a child that must import :mod:`repro`.

    Prepends the package's source root to ``PYTHONPATH`` so hosts work
    under ``PYTHONPATH=src`` checkouts and installed trees alike.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    return env


@dataclass(frozen=True)
class HostExit:
    """Final status of one supervised child at shutdown."""

    host_index: int  # -1 for children not spawned via spawn_host
    returncode: int
    expected: bool  # killed/replaced deliberately by the runtime


class Supervisor:
    """Owns a set of child processes and guarantees they are reaped."""

    def __init__(self, grace: float = DEFAULT_GRACE) -> None:
        self.grace = grace
        self.procs: List[subprocess.Popen] = []
        self.by_host: Dict[int, subprocess.Popen] = {}
        self.host_of_pid: Dict[int, int] = {}
        self.restarts: Counter = Counter()
        self._expected_pids: Set[int] = set()

    def spawn(
        self, args: Sequence[str], env: Optional[Dict[str, str]] = None
    ) -> subprocess.Popen:
        proc = subprocess.Popen(
            list(args),
            env=env if env is not None else python_env(),
            stdin=subprocess.DEVNULL,
        )
        self.procs.append(proc)
        return proc

    def spawn_host(
        self,
        host_index: int,
        spec_json: str,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> subprocess.Popen:
        """Spawn (or respawn) the process for one node host.

        Respawning marks the previous incarnation expected-dead and
        bumps the per-host restart counter.
        """
        from .spec import SPEC_ENV

        env = python_env()
        env[SPEC_ENV] = spec_json
        if extra_env:
            env.update(extra_env)
        previous = self.by_host.get(host_index)
        if previous is not None:
            self._expected_pids.add(previous.pid)
            self.restarts[host_index] += 1
        proc = self.spawn(
            [sys.executable, "-m", "repro", "service", "node",
             "--host-index", str(host_index)],
            env=env,
        )
        self.by_host[host_index] = proc
        self.host_of_pid[proc.pid] = host_index
        return proc

    def poll_host(self, host_index: int) -> Optional[int]:
        """Exit code of the host's current incarnation, or None if alive."""
        proc = self.by_host.get(host_index)
        if proc is None:
            return None
        return proc.poll()

    def signal_host(self, host_index: int, sig: int) -> None:
        """Deliver a signal to the host's current incarnation (chaos hook)."""
        proc = self.by_host.get(host_index)
        if proc is None or proc.poll() is not None:
            return
        try:
            proc.send_signal(sig)
        except OSError:
            pass

    def kill_host(self, host_index: int) -> None:
        """SIGKILL + reap one host's current incarnation, marked expected.

        SIGKILL works on SIGSTOPped children too, so this also clears
        hung/stopped hosts.  Idempotent for already-dead children.
        """
        proc = self.by_host.get(host_index)
        if proc is None:
            return
        self._expected_pids.add(proc.pid)
        if proc.poll() is None:
            try:
                proc.kill()
            except OSError:
                pass
        try:
            proc.wait(timeout=self.grace)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL reaps
            pass

    def alive(self) -> List[subprocess.Popen]:
        return [p for p in self.procs if p.poll() is None]

    def shutdown(self, grace: Optional[float] = None) -> List[int]:
        """Terminate and reap every child; returns their exit codes.

        SIGTERM first (node hosts trap it to flush metrics and exit 0),
        SIGKILL for anything that outlives the grace period.  Idempotent.
        """
        if grace is None:
            grace = self.grace
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        codes: List[int] = []
        for proc in self.procs:
            try:
                codes.append(proc.wait(timeout=grace))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
        return codes

    def shutdown_report(self, grace: Optional[float] = None) -> List[HostExit]:
        """:meth:`shutdown`, annotated per child with host index and
        whether the runtime killed/replaced that incarnation on purpose."""
        codes = self.shutdown(grace)
        return [
            HostExit(
                host_index=self.host_of_pid.get(proc.pid, -1),
                returncode=code,
                expected=proc.pid in self._expected_pids,
            )
            for proc, code in zip(self.procs, codes)
        ]

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
