"""Wire plumbing for the service runtime: record channels + frame envelopes.

Two kinds of bytes cross process boundaries:

* **control records** — tuples of ints/floats/strs/bytes/bools/None/
  nested tuples, length-prefix framed via :mod:`repro.net.framing`
  (``encode_record`` / ``StreamDecoder``).  The coordinator speaks them
  over blocking sockets; node hosts over asyncio streams.

* **frame envelopes** — one per link-layer :class:`~repro.net.network.
  Delivery`, carrying the byte-level payload encoding plus the real
  edge-key HMAC and a ``(band, order, subseq)`` sort key.  Receivers
  re-decode the payload, re-derive the canonical edge-MAC message and
  verify the HMAC themselves — acceptance is recomputed from crypto on
  every process, never trusted from the sender.

The sort key makes a receiver's per-interval inbox order *identical* to
the in-process simulator's chronological deposit order no matter how the
asynchronous shipping interleaves: band 0 frames (base station + pre-tick
adversary + frames sent into future intervals) precede honest frames
(band 1, ordered by sender id, then per-host sequence), which precede
post-tick adversary frames (band 2).  Within a coordinator band, a global
monotone counter preserves coordinator chronology.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Callable, List, Optional, Tuple

from ..errors import HostChannelError, HostUnresponsiveError, ServiceError
from ..net.framing import FramingError, StreamDecoder, encode_record
from ..net.network import Delivery, PhaseContext, _SendBatch
from .resilience import ControlTimeouts, control_timeout

#: (interval, receiver, band, order, subseq, claimed_sender, key_index,
#:  edge_mac, payload_bytes)
Envelope = Tuple[int, int, int, int, int, int, int, bytes, bytes]

DEFAULT_TIMEOUT = 60.0

_RECV_CHUNK = 65536

#: Liveness keep-alive record, sent host -> coordinator on a timer and
#: filtered out of the record queue on receipt: heartbeats refresh the
#: channel's last-traffic clock but are invisible to protocol logic.
HEARTBEAT = ("hb",)


# ----------------------------------------------------------------------
# Frame envelopes
# ----------------------------------------------------------------------
def delivery_envelope(
    delivery: Delivery, band: int, order: int, subseq: int
) -> Envelope:
    """Pack one deposited frame for shipping.

    Reading ``delivery.edge_mac`` forces the real HMAC computation on the
    sending process — the wire always carries authenticated frames.
    """
    batch = delivery._batch
    return (
        delivery.interval,
        delivery.receiver,
        band,
        order,
        subseq,
        batch.claimed_sender,
        delivery.key_index,
        delivery.edge_mac,
        batch.payload_bytes,
    )


def envelope_sort_key(env: Envelope) -> Tuple[int, int, int]:
    return (env[2], env[3], env[4])


def ingest_envelope(
    phase: PhaseContext, env: Envelope
) -> Tuple[int, int, Tuple[int, int, int], Delivery]:
    """Rebuild a :class:`Delivery` from an envelope on the receiving side.

    Returns ``(interval, receiver, sort_key, delivery)``.  The payload is
    re-decoded from its canonical bytes, the canonical encoding check
    guards against any decode/encode asymmetry, and ``verified`` is
    recomputed locally from the shipped HMAC — the receiving process
    trusts only the cryptography, not the sender's verdict.
    """
    from ..net.framing import decode_payload

    interval, receiver, band, order, subseq, sender, key_index, mac, payload_bytes = env
    payload = decode_payload(payload_bytes)
    batch = _SendBatch(phase, sender, payload)
    if batch.payload_bytes != payload_bytes:
        raise ServiceError(
            f"frame payload re-encoding mismatch for sender {sender} -> "
            f"{receiver} in interval {interval}"
        )
    network = phase.network
    message = batch.message_for(receiver, interval)
    verified = network._accepts_message(receiver, key_index, mac, message)
    delivery = Delivery(
        batch, receiver, key_index, interval, edge_mac=mac, verified=verified
    )
    return interval, receiver, (band, order, subseq), delivery


# ----------------------------------------------------------------------
# Synchronous record channel (coordinator side)
# ----------------------------------------------------------------------
class RecordChannel:
    """Length-prefixed record I/O over one blocking socket.

    The receive path waits in short poll slices rather than one long
    blocking read, so between slices the channel can (a) run an optional
    ``liveness`` probe (the coordinator points it at the supervisor's
    child-exit poll, turning a crashed host into an immediate
    :class:`~repro.errors.HostChannelError` instead of a timeout) and
    (b) enforce the heartbeat detection window: if *no* traffic — not
    even a heartbeat — arrives for ``detection_window`` seconds, the
    peer is declared unresponsive (hung or stopped process).  Socket
    failures, EOF, and corrupt framing all raise
    :class:`~repro.errors.HostChannelError` — the recoverable class the
    resilience layer answers with a restart; only peer-*reported* errors
    stay plain :class:`~repro.errors.ServiceError` (fatal logic bugs).
    """

    def __init__(
        self,
        sock: socket.socket,
        timeout: Optional[float] = None,
        on_wire: Optional[Callable[[int, int], None]] = None,
        timeouts: Optional[ControlTimeouts] = None,
        liveness: Optional[Callable[[], None]] = None,
    ) -> None:
        if timeouts is None:
            timeouts = ControlTimeouts(
                control_timeout=timeout if timeout is not None else control_timeout(),
                detection_window=0.0,  # disabled for bare channels
            )
        self.timeouts = timeouts
        self.sock = sock
        sock.settimeout(min(timeouts.poll, timeouts.control_timeout))
        self.decoder = StreamDecoder()
        self._queue: List[tuple] = []
        self.on_wire = on_wire
        self.liveness = liveness
        self._last_rx = time.monotonic()
        self.records_sent = 0

    def send(self, *parts) -> None:
        data = encode_record(*parts)
        try:
            self.sock.sendall(data)
        except OSError as exc:
            raise HostChannelError(f"control send failed: {exc}") from exc
        self.records_sent += 1
        if self.on_wire is not None:
            self.on_wire(len(data), 1)

    def recv(self) -> tuple:
        started = time.monotonic()
        while not self._queue:
            try:
                chunk = self.sock.recv(_RECV_CHUNK)
            except socket.timeout:
                now = time.monotonic()
                if self.liveness is not None:
                    self.liveness()
                window = self.timeouts.detection_window
                if window > 0 and now - self._last_rx > window:
                    raise HostUnresponsiveError(
                        f"no control traffic (not even a heartbeat) for "
                        f"{now - self._last_rx:.1f}s > detection window {window}s"
                    ) from None
                if now - started > self.timeouts.control_timeout:
                    raise HostChannelError("control channel timed out") from None
                continue
            except OSError as exc:
                raise HostChannelError(f"control recv failed: {exc}") from exc
            if not chunk:
                raise HostChannelError("control channel closed by peer")
            self._last_rx = time.monotonic()
            if self.on_wire is not None:
                self.on_wire(len(chunk), 0)
            try:
                records = self.decoder.feed(chunk)
            except FramingError as exc:
                raise HostChannelError(f"corrupt control stream: {exc}") from exc
            self._queue.extend(r for r in records if r != HEARTBEAT)
        record = self._queue.pop(0)
        if self.on_wire is not None:
            self.on_wire(0, 1)
        if record and record[0] == "error":
            raise ServiceError(f"peer reported: {record[1]}")
        return record

    def request(self, *parts) -> tuple:
        self.send(*parts)
        return self.recv()

    def abort(self) -> None:
        """Reset the connection (RST, not FIN) — chaos-harness hook.

        ``SO_LINGER`` with a zero timeout makes ``close()`` discard any
        unsent data and send a TCP reset, which the peer observes as a
        hard connection failure mid-stream.
        """
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Asynchronous record stream (node-host side)
# ----------------------------------------------------------------------
class AsyncRecordStream:
    """Length-prefixed record I/O over one asyncio stream pair.

    Sends are serialized under a lock so a background heartbeat task and
    the dispatch loop can share one stream without interleaving frames.
    """

    def __init__(self, reader, writer, on_wire=None) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = StreamDecoder()
        self._queue: List[tuple] = []
        self.on_wire = on_wire
        self._send_lock = None  # created lazily inside the running loop

    async def send(self, *parts) -> None:
        import asyncio

        if self._send_lock is None:
            self._send_lock = asyncio.Lock()
        data = encode_record(*parts)
        async with self._send_lock:
            self.writer.write(data)
            await self.writer.drain()
        if self.on_wire is not None:
            self.on_wire(len(data), 1)

    async def recv(self) -> Optional[tuple]:
        """Next record, or ``None`` on clean EOF."""
        while not self._queue:
            chunk = await self.reader.read(_RECV_CHUNK)
            if not chunk:
                return None
            if self.on_wire is not None:
                self.on_wire(len(chunk), 0)
            self._queue.extend(self.decoder.feed(chunk))
        record = self._queue.pop(0)
        if self.on_wire is not None:
            self.on_wire(0, 1)
        return record

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass
