"""Simulation kernel: discrete-event engine and loosely synchronized clocks.

VMAT's proofs reason in *intervals* and *flooding rounds* over a network of
sensors whose clocks agree only up to a bounded error ``Delta``.  This
subpackage provides exactly those abstractions:

* :class:`~repro.sim.engine.SimulationEngine` — a minimal, deterministic
  discrete-event scheduler (a binary-heap event queue with stable
  tie-breaking).
* :class:`~repro.sim.clock.LocalClock` — a per-sensor clock with a fixed
  offset bounded by ``Delta``, plus the guard-band arithmetic of Section
  IV-A that lets a sensor transmit "inside interval k" such that every
  honest receiver also observes interval k.
* :class:`~repro.sim.engine.IntervalSchedule` — maps interval indices to
  global times for a protocol phase.
"""

from .clock import ClockAssignment, LocalClock
from .engine import Event, IntervalSchedule, SimulationEngine
from .timeline import (
    ExecutionTimeline,
    PhasePlan,
    execution_latency_seconds,
    pinpointing_duration,
    plan_execution,
    simulate_slot_timing,
)

__all__ = [
    "ClockAssignment",
    "ExecutionTimeline",
    "PhasePlan",
    "execution_latency_seconds",
    "pinpointing_duration",
    "plan_execution",
    "simulate_slot_timing",
    "Event",
    "IntervalSchedule",
    "LocalClock",
    "SimulationEngine",
]
