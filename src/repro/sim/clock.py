"""Loosely synchronized clocks with bounded error (Section III).

The paper assumes "loosely synchronized clocks with bounded clock errors":
the offset between any two honest sensors' clocks never exceeds ``Delta``.
Section IV-A's guard-band technique then makes interval-slotted protocols
safe: a sensor that must transmit "in interval k" avoids the first and
last ``Delta`` of the interval *by its own clock*, which guarantees every
honest receiver's clock also reads interval k at the moment of reception.

We model each sensor's clock as ``local = global + offset`` with
``|offset| <= Delta / 2`` so that any two honest sensors disagree by at
most ``Delta``, exactly the paper's bound.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable

from ..config import ClockConfig
from ..errors import SimulationError
from .engine import IntervalSchedule


class LocalClock:
    """A per-sensor clock with a fixed bounded offset from global time.

    ``offset`` is the deployment-time synchronization error and must
    respect the paper's bound (``|offset| <= Delta / 2``).  ``drift`` is
    an *injected excursion* on top of it (see :mod:`repro.faults`):
    unlike the offset it may escape the bound — that is exactly the
    failure mode the fault layer exists to exercise — so it is excluded
    from the constructor's validation and defaults to zero.
    """

    def __init__(self, offset: float, config: ClockConfig) -> None:
        if abs(offset) > config.max_error / 2 + 1e-12:
            raise SimulationError(
                f"clock offset {offset} exceeds Delta/2 = {config.max_error / 2}"
            )
        self.offset = offset
        self.config = config
        self.drift = 0.0

    @property
    def effective_offset(self) -> float:
        """Offset actually in force: synchronization error plus drift."""
        return self.offset + self.drift

    def local_time(self, global_time: float) -> float:
        """What this sensor's clock reads at the given global instant."""
        return global_time + self.effective_offset

    def global_time(self, local_time: float) -> float:
        """The global instant at which this sensor's clock reads ``local_time``."""
        return local_time - self.effective_offset

    def safe_send_time(self, schedule: IntervalSchedule, interval: int) -> float:
        """Global time at which to transmit so receivers see ``interval``.

        Implements the guard-band rule of Section IV-A: aim for the
        midpoint of the interval by the *local* clock.  Because the
        interval is longer than ``2 * Delta`` (enforced by
        :class:`~repro.config.ClockConfig`), the midpoint by any honest
        clock is at least ``Delta`` clear of both interval boundaries, so
        every honest receiver observes the same interval index.
        """
        # The sensor computes the interval midpoint in *local* time and
        # converts to the global instant it will actually transmit at.
        local_midpoint = schedule.midpoint(interval)
        global_send = self.global_time(local_midpoint)
        guard = self.config.guard_band
        start, end = schedule.interval_start(interval), schedule.interval_end(interval)
        # Sanity check the guard-band property rather than silently
        # trusting it — but only when no drift excursion is injected.
        # With drift the violation is the *modelled fault*, not a config
        # bug: the sensor transmits where its broken clock tells it to,
        # and the frame lands whichever interval that turns out to be.
        if self.drift == 0.0 and not (start + guard / 2 <= global_send <= end - guard / 2):
            raise SimulationError(
                "guard-band violation: send time escapes the interval; "
                "check ClockConfig.interval_length > 2 * max_error"
            )
        return global_send

    def observed_interval(self, schedule: IntervalSchedule, global_time: float) -> int:
        """The interval index this sensor believes it is in at ``global_time``."""
        return schedule.interval_of(self.local_time(global_time))


class ClockAssignment:
    """Deterministically assigns bounded-offset clocks to a set of sensors.

    The base station (node id 0 by convention) always gets a zero offset:
    it is the time reference that announces phase starting times via
    authenticated broadcast.
    """

    def __init__(
        self,
        node_ids: Iterable[int],
        config: ClockConfig,
        seed: int,
        base_station_id: int = 0,
    ) -> None:
        rng = random.Random(("clocks", seed).__repr__())
        half = config.max_error / 2
        self.config = config
        self.clocks: Dict[int, LocalClock] = {}
        for node_id in node_ids:
            offset = 0.0 if node_id == base_station_id else rng.uniform(-half, half)
            self.clocks[node_id] = LocalClock(offset, config)

    def __getitem__(self, node_id: int) -> LocalClock:
        return self.clocks[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.clocks

    def __len__(self) -> int:
        return len(self.clocks)

    def max_pairwise_error(self) -> float:
        """Largest clock disagreement across all pairs.

        Uses *effective* offsets, so the bound ``<= Delta`` holds exactly
        when no drift excursion (:mod:`repro.faults`) is in force.
        """
        offsets = [clock.effective_offset for clock in self.clocks.values()]
        return max(offsets) - min(offsets) if offsets else 0.0

    def drift_active(self) -> bool:
        """Whether any clock currently carries an injected drift excursion."""
        return any(clock.drift != 0.0 for clock in self.clocks.values())

    def within_bound(self, tolerance: float = 1e-12) -> bool:
        """The paper's Section-III synchronization assumption, as a check:
        every pair of clocks disagrees by at most ``Delta``.  Injected
        drift (:mod:`repro.faults`) is allowed to break this — callers
        gate on :meth:`drift_active` first."""
        return self.max_pairwise_error() <= self.config.max_error + tolerance
