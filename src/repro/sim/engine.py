"""Deterministic discrete-event simulation engine.

The engine is intentionally small: a binary-heap priority queue of
``(time, sequence, callback)`` entries.  The monotonically increasing
sequence number makes execution order *stable* for events scheduled at the
same instant, which keeps every experiment reproducible bit-for-bit given
its seed.

Protocol phases in VMAT are slotted into equal-length intervals, so the
engine is complemented by :class:`IntervalSchedule`, which converts between
interval indices (the unit the paper's proofs use) and global simulation
time (the unit the engine uses).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Ordered by time, then insertion order.

    A ``__slots__`` class rather than a dataclass: large-topology runs
    heap millions of these, and dropping the per-instance ``__dict__``
    roughly halves their memory while keeping the public attribute API.
    The sequence number is unique per engine, so comparisons never reach
    the (incomparable) callback.
    """

    __slots__ = ("time", "sequence", "callback", "label")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label

    def _key(self) -> "tuple[float, int]":
        return (self.time, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(time={self.time}, sequence={self.sequence}, label={self.label!r})"


class SimulationEngine:
    """A minimal discrete-event scheduler.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(2.0, lambda: fired.append("b"))
    >>> _ = engine.schedule(1.0, lambda: fired.append("a"))
    >>> engine.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._time_hooks: list[Callable[[float], None]] = []

    def add_time_hook(self, hook: Callable[[float], None]) -> None:
        """Register a callback invoked with the new time on every step.

        Hooks run *before* the event's own callback, so observers (e.g. a
        :class:`repro.faults.FaultInjector` tracking the current global
        interval) see a consistent clock from inside event handlers.
        """
        self._time_hooks.append(hook)

    @property
    def now(self) -> float:
        """Current global simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises :class:`SimulationError` when scheduling into the past:
        the protocols here never need it, so a past timestamp indicates a
        bug (usually a clock-offset sign error).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, label=label)

    def step(self) -> Optional[Event]:
        """Execute the single earliest pending event, if any."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_processed += 1
        if self._time_hooks:
            for hook in self._time_hooks:
                hook(self._now)
        event.callback()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops once the next event lies strictly beyond that
        time (the clock still advances to ``until``).  ``max_events``
        bounds total callbacks as a runaway guard.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant: run() called from a callback")
        self._running = True
        try:
            executed = 0
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self._now = max(self._now, until)
                    return
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                self.step()
                executed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (asserts queue quiescence)."""
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        self.run(until=time)


class IntervalSchedule:
    """Maps the paper's 1-based interval indices to global time.

    A protocol phase starting at ``start_time`` with interval length
    ``interval_length`` has interval ``k`` spanning::

        [start_time + (k-1) * interval_length, start_time + k * interval_length)

    The paper's proofs index intervals from 1; index 0 is reserved for
    "before the phase" (e.g. the base station's own actions).
    """

    def __init__(self, start_time: float, interval_length: float, num_intervals: int) -> None:
        if interval_length <= 0:
            raise SimulationError("interval_length must be positive")
        if num_intervals < 1:
            raise SimulationError("a phase needs at least one interval")
        self.start_time = start_time
        self.interval_length = interval_length
        self.num_intervals = num_intervals

    @property
    def end_time(self) -> float:
        return self.start_time + self.num_intervals * self.interval_length

    def interval_start(self, k: int) -> float:
        """Global start time of interval ``k`` (1-based)."""
        self._check_index(k)
        return self.start_time + (k - 1) * self.interval_length

    def interval_end(self, k: int) -> float:
        self._check_index(k)
        return self.start_time + k * self.interval_length

    def interval_of(self, time: float) -> int:
        """Interval index containing global ``time``; 0 if before phase.

        Times at or beyond the end of the phase map to
        ``num_intervals + 1``, matching the paper's rule that messages
        arriving after the L-th interval are ignored.
        """
        if time < self.start_time:
            return 0
        if time >= self.end_time:
            return self.num_intervals + 1
        k = int((time - self.start_time) // self.interval_length) + 1
        # ``time - start_time`` can lose a ulp when start_time and the
        # interval length are not float-aligned (start 5.0, length 0.1:
        # 5.1 - 5.0 = 0.0999...), landing an exact boundary time in the
        # wrong interval.  Nudge the candidate until it agrees with
        # interval_start/interval_end, which place boundaries by
        # multiplication — one step is always enough at these magnitudes.
        if k < self.num_intervals and time >= self.start_time + k * self.interval_length:
            k += 1
        elif k > 1 and time < self.start_time + (k - 1) * self.interval_length:
            k -= 1
        return k

    def midpoint(self, k: int) -> float:
        """Global midpoint of interval ``k`` — the canonical safe send time."""
        self._check_index(k)
        return self.interval_start(k) + self.interval_length / 2

    def _check_index(self, k: int) -> None:
        if not 1 <= k <= self.num_intervals:
            raise SimulationError(
                f"interval index {k} out of range [1, {self.num_intervals}]"
            )
