"""Wall-clock timelines for protocol executions.

The proofs count *flooding rounds*; a deployment plans in *seconds*.
This module maps an execution onto global time using the interval
structure and the bounded-error clocks:

* :class:`PhasePlan` — one slotted phase laid onto an
  :class:`~repro.sim.engine.IntervalSchedule`, with per-node safe send
  times (guard-banded) for any interval.
* :func:`plan_execution` — the full Figure-1 happy path as a sequence of
  phase plans (announcements, tree formation, aggregation,
  confirmation), giving total latency in seconds.
* :func:`simulate_slot_timing` — drives the actual discrete-event engine
  with every sensor's guard-banded transmissions and *checks* that every
  honest receiver observes the intended interval: the executable form of
  the Section IV-A claim that bounded clock error is harmless.

These planners take the same ``ClockConfig`` as the network, so latency
numbers and the slotted simulation agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import ClockConfig
from ..errors import SimulationError
from .clock import ClockAssignment, LocalClock
from .engine import IntervalSchedule, SimulationEngine


@dataclass(frozen=True)
class PhasePlan:
    """One protocol phase pinned to global time."""

    name: str
    schedule: IntervalSchedule

    @property
    def start_time(self) -> float:
        return self.schedule.start_time

    @property
    def end_time(self) -> float:
        return self.schedule.end_time

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def send_time(self, clock: LocalClock, interval: int) -> float:
        """Guard-banded global send instant for a node in ``interval``."""
        return clock.safe_send_time(self.schedule, interval)


@dataclass
class ExecutionTimeline:
    """The Figure-1 happy path laid end-to-end on the global clock."""

    phases: List[PhasePlan] = field(default_factory=list)

    @property
    def total_duration(self) -> float:
        if not self.phases:
            return 0.0
        return self.phases[-1].end_time - self.phases[0].start_time

    def phase(self, name: str) -> PhasePlan:
        for plan in self.phases:
            if plan.name == name:
                return plan
        raise SimulationError(f"no phase named {name!r} in the timeline")

    def describe(self) -> List[Tuple[str, float, float]]:
        return [(p.name, p.start_time, p.end_time) for p in self.phases]


# A flooding round (base station floods the whole network) spans the
# network depth in intervals; announcements via authenticated broadcast
# cost one flooding round each (Section III).
_HAPPY_PATH_PHASES: Tuple[Tuple[str, str], ...] = (
    ("tree-announce", "flood"),
    ("tree-formation", "slotted"),
    ("query-announce", "flood"),
    ("aggregation", "slotted"),
    ("confirmation-announce", "flood"),
    ("confirmation", "slotted"),
)


def plan_execution(
    depth_bound: int,
    clock: ClockConfig,
    start_time: float = 0.0,
) -> ExecutionTimeline:
    """Lay out one happy-path execution; every phase spans ``L``
    intervals (a flood needs one interval per hop, like a slotted
    phase), so the total is ``6 L`` intervals — O(1) flooding rounds."""
    if depth_bound < 1:
        raise SimulationError("depth bound must be >= 1")
    timeline = ExecutionTimeline()
    cursor = start_time
    for name, _kind in _HAPPY_PATH_PHASES:
        schedule = IntervalSchedule(cursor, clock.interval_length, depth_bound)
        timeline.phases.append(PhasePlan(name=name, schedule=schedule))
        cursor = schedule.end_time
    return timeline


def pinpointing_duration(
    depth_bound: int,
    predicate_tests: int,
    clock: ClockConfig,
) -> float:
    """Wall-clock cost of a pinpointing run: each keyed predicate test
    is two flooding rounds of ``L`` intervals each (Theorem 6)."""
    if predicate_tests < 0:
        raise SimulationError("predicate_tests must be non-negative")
    return predicate_tests * 2 * depth_bound * clock.interval_length


def execution_latency_seconds(
    depth_bound: int,
    clock: ClockConfig,
    predicate_tests: int = 0,
) -> float:
    """Seconds from query announcement to result/revocation."""
    happy = plan_execution(depth_bound, clock).total_duration
    return happy + pinpointing_duration(depth_bound, predicate_tests, clock)


def simulate_slot_timing(
    num_nodes: int,
    depth_bound: int,
    clock_config: ClockConfig,
    seed: int = 0,
    sends: Optional[Iterable[Tuple[int, int]]] = None,
) -> Dict[Tuple[int, int], int]:
    """Drive the event engine with guard-banded transmissions and report
    the interval every *other* node observes for each send.

    ``sends`` is ``(node_id, interval)`` pairs; by default every node
    transmits once in every interval.  Returns ``{(node, interval):
    worst observed interval mismatch count}`` — all zeros when the
    guard-band arithmetic is sound, which the caller should assert.
    """
    engine = SimulationEngine()
    clocks = ClockAssignment(range(num_nodes), clock_config, seed)
    schedule = IntervalSchedule(0.0, clock_config.interval_length, depth_bound)
    if sends is None:
        sends = [
            (node, interval)
            for node in range(num_nodes)
            for interval in range(1, depth_bound + 1)
        ]

    mismatches: Dict[Tuple[int, int], int] = {}

    def make_event(sender: int, interval: int):
        def fire() -> None:
            now = engine.now
            bad = 0
            for receiver in range(num_nodes):
                if receiver == sender:
                    continue
                observed = clocks[receiver].observed_interval(schedule, now)
                if observed != interval:
                    bad += 1
            mismatches[(sender, interval)] = bad

        return fire

    for sender, interval in sends:
        send_time = clocks[sender].safe_send_time(schedule, interval)
        engine.schedule(send_time, make_event(sender, interval))
    engine.run()
    return mismatches
