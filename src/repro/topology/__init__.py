"""Sensor-network topology model and generators.

A :class:`~repro.topology.graph.Topology` is the *radio* connectivity
graph: which sensors can physically hear one another.  The base station is
node ``0`` by convention.  Protocol code operates on the *secure* subgraph
(radio edges whose endpoints share a non-revoked Eschenauer–Gligor key),
which is derived by :class:`~repro.net.network.Network`.

Generators cover the standard evaluation shapes: random geometric graphs
(the usual sensor-deployment model), grids, lines (worst-case depth), and
balanced trees.
"""

from .generators import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
    tree_topology,
)
from .graph import Topology
from .interop import (
    betweenness_ranking,
    cluster_topology,
    disjoint_paths_to_base,
    from_networkx,
    most_central_sensors,
    to_networkx,
)

__all__ = [
    "Topology",
    "betweenness_ranking",
    "cluster_topology",
    "disjoint_paths_to_base",
    "from_networkx",
    "most_central_sensors",
    "to_networkx",
    "grid_topology",
    "line_topology",
    "random_geometric_topology",
    "star_topology",
    "tree_topology",
]
