"""Topology generators for experiments and tests.

All generators are deterministic given their seed, and (where meaningful)
retry until the produced radio graph is connected — the paper's guarantees
only concern sensors in the base station's connected component, so a
disconnected deployment would silently weaken every experiment.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import TopologyError
from .graph import BASE_STATION_ID, Topology


def line_topology(num_nodes: int) -> Topology:
    """A path ``0 - 1 - 2 - ... - (n-1)``: the worst case for depth ``L``."""
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return Topology(num_nodes, edges)


def star_topology(num_nodes: int) -> Topology:
    """Every sensor is a direct neighbour of the base station (depth 1)."""
    edges = [(BASE_STATION_ID, i) for i in range(1, num_nodes)]
    return Topology(num_nodes, edges)


def grid_topology(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` grid with the base station at the corner (0, 0)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    num_nodes = rows * cols
    if num_nodes < 2:
        raise TopologyError("grid needs at least two nodes")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    positions = {}
    for r in range(rows):
        for c in range(cols):
            positions[node(r, c)] = (float(c), float(r))
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return Topology(num_nodes, edges, positions=positions)


def tree_topology(num_nodes: int, branching: int = 2) -> Topology:
    """A balanced ``branching``-ary tree rooted at the base station."""
    if branching < 1:
        raise TopologyError("branching factor must be >= 1")
    edges = [(child, (child - 1) // branching) for child in range(1, num_nodes)]
    return Topology(num_nodes, edges)


def random_geometric_topology(
    num_nodes: int,
    radius: float,
    seed: int,
    area: float = 1.0,
    max_attempts: int = 50,
    base_station_center: bool = True,
) -> Topology:
    """Uniform random placement in an ``area x area`` square.

    Two nodes are radio neighbours when within ``radius``.  Placement is
    retried (with derived seeds) until the radio graph is connected; this
    mirrors real deployments, which are engineered for connectivity.

    Raises :class:`TopologyError` if no connected placement is found in
    ``max_attempts`` tries — raise ``radius`` or lower ``num_nodes``.
    """
    if radius <= 0:
        raise TopologyError("radius must be positive")
    for attempt in range(max_attempts):
        rng = random.Random(("geo", seed, attempt).__repr__())
        positions = {}
        for node in range(num_nodes):
            if node == BASE_STATION_ID and base_station_center:
                positions[node] = (area / 2, area / 2)
            else:
                positions[node] = (rng.uniform(0, area), rng.uniform(0, area))
        topology = _connect_by_radius(num_nodes, positions, radius)
        if topology.is_connected():
            return topology
    raise TopologyError(
        f"no connected geometric placement after {max_attempts} attempts "
        f"(n={num_nodes}, radius={radius}, area={area})"
    )


def _connect_by_radius(num_nodes: int, positions, radius: float) -> Topology:
    """Build edges between all node pairs within ``radius``.

    Uses a spatial hash grid so dense deployments stay close to O(n).
    """
    cell = radius
    buckets: dict[tuple[int, int], list[int]] = {}
    for node, (x, y) in positions.items():
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(node)

    edges = []
    radius_sq = radius * radius
    for (bx, by), members in buckets.items():
        neighbor_cells = [
            (bx + dx, by + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
        ]
        for node in members:
            x1, y1 = positions[node]
            for cell_key in neighbor_cells:
                for other in buckets.get(cell_key, ()):
                    if other <= node:
                        continue
                    x2, y2 = positions[other]
                    if (x1 - x2) ** 2 + (y1 - y2) ** 2 <= radius_sq:
                        edges.append((node, other))
    return Topology(num_nodes, edges, positions=positions)


def recommended_radius(num_nodes: int, area: float = 1.0, margin: float = 1.6) -> float:
    """Radius giving high connectivity probability for uniform placement.

    The connectivity threshold for random geometric graphs is
    ``r* = sqrt(ln n / (pi n))`` (per unit square); ``margin`` scales it
    comfortably above the threshold.
    """
    if num_nodes < 2:
        raise TopologyError("need at least two nodes")
    return margin * area * math.sqrt(math.log(num_nodes) / (math.pi * num_nodes))
