"""Radio-connectivity graph for a sensor network.

The topology is undirected and static for the lifetime of an experiment.
Node ``0`` is the base station.  Depth (the paper's per-sensor ``depth``
and network depth ``L``) is defined on a *subset* of nodes — the proofs
always exclude malicious sensors when reasoning about depth, so
:meth:`Topology.depths` takes the node set to consider.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import TopologyError

BASE_STATION_ID = 0


def depths_over(
    adjacency: Dict[int, Iterable[int]],
    source: int = BASE_STATION_ID,
    allowed: Optional[Set[int]] = None,
) -> Dict[int, int]:
    """BFS depths over a plain adjacency mapping.

    The workhorse behind :meth:`Topology.depths` and the incremental
    secure-topology view (:mod:`repro.net.network`): running directly on
    an adjacency dict lets callers maintain a filtered edge set in place
    instead of materializing a :class:`Topology` copy per query.
    ``allowed`` restricts traversal (the source is always allowed);
    unreachable nodes are absent from the result.
    """
    depth: Dict[int, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        next_depth = depth[current] + 1
        for neighbor in adjacency.get(current, ()):
            if neighbor not in depth and (allowed is None or neighbor in allowed):
                depth[neighbor] = next_depth
                frontier.append(neighbor)
    return depth


def component_over(
    adjacency: Dict[int, Iterable[int]],
    source: int = BASE_STATION_ID,
    allowed: Optional[Set[int]] = None,
) -> Set[int]:
    """Nodes reachable from ``source`` over ``adjacency`` within ``allowed``."""
    return set(depths_over(adjacency, source=source, allowed=allowed))


class Topology:
    """An undirected radio graph over integer node ids.

    Parameters
    ----------
    num_nodes:
        Total node count *including* the base station (node ``0``).
    edges:
        Iterable of undirected ``(a, b)`` pairs.
    positions:
        Optional ``{node_id: (x, y)}`` map for geometric topologies; kept
        for visualization and wormhole-distance checks but never consulted
        by protocol logic.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        if num_nodes < 2:
            raise TopologyError("a sensor network needs the base station plus >= 1 sensor")
        self.num_nodes = num_nodes
        self._adjacency: Dict[int, Set[int]] = {i: set() for i in range(num_nodes)}
        for a, b in edges:
            self.add_edge(a, b)
        self.positions = dict(positions) if positions else {}

    # ------------------------------------------------------------------
    # Construction and basic queries
    # ------------------------------------------------------------------
    def add_edge(self, a: int, b: int) -> None:
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise TopologyError(f"self-loop on node {a}")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, ())

    def neighbors(self, node: int) -> FrozenSet[int]:
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    @property
    def node_ids(self) -> range:
        return range(self.num_nodes)

    @property
    def sensor_ids(self) -> List[int]:
        """All node ids except the base station."""
        return [i for i in range(self.num_nodes) if i != BASE_STATION_ID]

    def edges(self) -> Iterator[Tuple[int, int]]:
        for a in range(self.num_nodes):
            for b in self._adjacency[a]:
                if a < b:
                    yield (a, b)

    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------------
    # Depth and connectivity (Section III definitions)
    # ------------------------------------------------------------------
    def depths(
        self,
        include: Optional[Set[int]] = None,
        source: int = BASE_STATION_ID,
    ) -> Dict[int, int]:
        """BFS depth of every reachable node, restricted to ``include``.

        ``include`` is the node set the paths may traverse (the paper
        computes depth "excluding all malicious sensors").  The source is
        always considered included.  Unreachable nodes are absent from
        the result.
        """
        allowed = set(include) if include is not None else None
        if allowed is not None:
            allowed.add(source)
        self._check_node(source)
        return depths_over(self._adjacency, source=source, allowed=allowed)

    def network_depth(self, exclude: Optional[Set[int]] = None) -> int:
        """The paper's ``L``: max depth over reachable honest sensors."""
        exclude = exclude or set()
        include = {i for i in range(self.num_nodes) if i not in exclude}
        depth = self.depths(include=include)
        reachable = [d for node, d in depth.items() if node != BASE_STATION_ID]
        if not reachable:
            raise TopologyError("no sensor is reachable from the base station")
        return max(reachable)

    def is_connected(self, exclude: Optional[Set[int]] = None) -> bool:
        """Whether all non-excluded nodes reach the base station."""
        exclude = exclude or set()
        include = {i for i in range(self.num_nodes) if i not in exclude}
        depth = self.depths(include=include)
        return all(node in depth for node in include)

    def connected_component(self, exclude: Optional[Set[int]] = None) -> Set[int]:
        """Nodes reachable from the base station avoiding ``exclude``."""
        exclude = exclude or set()
        include = {i for i in range(self.num_nodes) if i not in exclude}
        return set(self.depths(include=include))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def subgraph(self, keep_edge) -> "Topology":
        """A copy retaining only edges for which ``keep_edge(a, b)`` is true."""
        kept = [(a, b) for a, b in self.edges() if keep_edge(a, b)]
        return Topology(self.num_nodes, kept, positions=self.positions)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"unknown node id {node} (num_nodes={self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n={self.num_nodes}, edges={self.num_edges()})"
