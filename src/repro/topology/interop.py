"""NetworkX interop and topology analytics.

Experiment design often needs graph-theoretic placement decisions —
"put the adversary on the highest-betweenness cut", "how many vertex-
disjoint paths protect the far corner?".  Rather than re-implementing
graph algorithms, this module bridges :class:`~repro.topology.graph.
Topology` to networkx and wraps the handful of analytics the examples
and benches use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import TopologyError
from .graph import BASE_STATION_ID, Topology


def to_networkx(topology: Topology):
    """An undirected ``networkx.Graph`` view (positions as node attrs)."""
    import networkx

    graph = networkx.Graph()
    graph.add_nodes_from(topology.node_ids)
    graph.add_edges_from(topology.edges())
    for node, (x, y) in topology.positions.items():
        graph.nodes[node]["pos"] = (x, y)
    return graph


def from_networkx(graph) -> Topology:
    """Build a :class:`Topology` from a networkx graph with int nodes
    ``0..n-1`` (node 0 becomes the base station)."""
    nodes = sorted(graph.nodes)
    if nodes != list(range(len(nodes))):
        raise TopologyError("nodes must be consecutive integers starting at 0")
    positions = {
        node: tuple(data["pos"])
        for node, data in graph.nodes(data=True)
        if "pos" in data
    }
    return Topology(len(nodes), list(graph.edges), positions=positions or None)


def betweenness_ranking(topology: Topology) -> List[Tuple[int, float]]:
    """Sensors ranked by betweenness centrality (descending) — the
    natural 'most damaging compromise' ordering for experiment design."""
    import networkx

    graph = to_networkx(topology)
    scores = networkx.betweenness_centrality(graph)
    return sorted(
        ((node, score) for node, score in scores.items() if node != BASE_STATION_ID),
        key=lambda pair: (-pair[1], pair[0]),
    )


def most_central_sensors(topology: Topology, count: int) -> List[int]:
    """The ``count`` highest-betweenness sensors (worst-case compromise
    set for dropping attacks)."""
    if count < 0:
        raise TopologyError("count must be non-negative")
    return [node for node, _score in betweenness_ranking(topology)[:count]]


def disjoint_paths_to_base(topology: Topology, sensor: int) -> int:
    """Number of vertex-disjoint paths from a sensor to the base station
    — how many simultaneous compromises it takes to fence it off
    (relevant to multipath aggregation, §IV-D)."""
    import networkx

    if sensor == BASE_STATION_ID:
        raise TopologyError("the base station needs no path to itself")
    graph = to_networkx(topology)
    return networkx.node_connectivity(graph, sensor, BASE_STATION_ID)


def cluster_topology(
    num_clusters: int,
    cluster_size: int,
    seed: int = 0,
    intra_radius: float = 0.35,
) -> Topology:
    """A clustered deployment: dense node clusters bridged by their
    heads in a line back to the base station — the classic hierarchical
    WSN layout, and a worst case for cut-vertex attacks.

    Node 0 is the base station; node ``1 + c * cluster_size`` is cluster
    ``c``'s head.  Heads form a chain ``BS - head_0 - head_1 - ...``;
    members connect to their head and to nearby members.
    """
    import random as _random

    if num_clusters < 1 or cluster_size < 1:
        raise TopologyError("need at least one cluster with one member")
    num_nodes = 1 + num_clusters * cluster_size
    edges: List[Tuple[int, int]] = []
    positions: Dict[int, Tuple[float, float]] = {0: (0.0, 0.5)}
    rng = _random.Random(("clusters", seed).__repr__())
    previous_head = 0
    for cluster in range(num_clusters):
        head = 1 + cluster * cluster_size
        cx = (cluster + 1) / (num_clusters + 1)
        positions[head] = (cx, 0.5)
        edges.append((previous_head, head))
        members = list(range(head + 1, head + cluster_size))
        for member in members:
            positions[member] = (
                cx + rng.uniform(-0.08, 0.08),
                0.5 + rng.uniform(-0.2, 0.2),
            )
            edges.append((head, member))
        # Intra-cluster member links by proximity.
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                ax, ay = positions[a]
                bx, by = positions[b]
                if (ax - bx) ** 2 + (ay - by) ** 2 <= (intra_radius * 0.4) ** 2:
                    edges.append((a, b))
        previous_head = head
    return Topology(num_nodes, edges, positions=positions)
