"""Structured execution traces.

Attach a :class:`Tracer` to a network and every link transmission,
authenticated broadcast, phase boundary, protocol outcome and revocation
becomes a queryable event — the raw material for debugging a protocol
run, auditing an attack scenario, or building visualizations.

>>> from repro import build_deployment, VMATProtocol, MinQuery
>>> from repro.tracing import Tracer
>>> deployment = build_deployment(num_nodes=20, seed=1)
>>> tracer = Tracer.attach(deployment.network)
>>> readings = {i: float(i) for i in deployment.topology.sensor_ids}
>>> _ = VMATProtocol(deployment.network).execute(MinQuery(), readings)
>>> tracer.counts()["transmission"] > 0
True

Events carry only primitive fields, so ``to_jsonl`` round-trips through
``json`` without custom encoders.

With a :class:`~repro.faults.FaultInjector` attached to the same
network, two more event kinds appear: ``"fault"`` (one per fault-event
activation; the ``fault`` field names the fault kind, alongside the
event's own fields) and
``"pinpoint-inconclusive"`` (a benign-mode pinpoint walk withheld an
absence-based revocation; carries the trigger and reason).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .errors import ReproError


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a kind tag plus flat primitive fields."""

    sequence: int
    kind: str
    fields: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"sequence": self.sequence, "kind": self.kind, **self.fields}


class Tracer:
    """Append-only event recorder with simple querying."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ReproError("tracer capacity must be positive when set")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._sequence = 0
        self.dropped = 0
        self._listeners: List[Any] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        event = TraceEvent(self._sequence, kind, fields)
        self._events.append(event)
        self._sequence += 1
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # Listeners (online consumers, e.g. repro.invariants)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Subscribe a callable to every event *as it is recorded*.

        Listeners see exactly the events that land in the buffer (an
        event dropped by ``capacity`` is not delivered), in order, on
        the recording thread.  This is the online hook the invariant
        monitor (:mod:`repro.invariants`) attaches through.
        """
        if not callable(listener):
            raise ReproError("tracer listener must be callable")
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self._events)

    def where(self, kind: Optional[str] = None, **matches: Any) -> List[TraceEvent]:
        """Events whose kind and fields match all the given values."""
        result = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if all(event.fields.get(k) == v for k, v in matches.items()):
                result.append(event)
        return result

    def clear(self) -> None:
        self._events.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in self._events)

    @staticmethod
    def from_jsonl(text: str) -> List[Dict[str, Any]]:
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def save(self, path) -> None:
        """Write the trace as a JSONL file (one event per line)."""
        with open(path, "w") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text)
                handle.write("\n")

    @staticmethod
    def load(path) -> List[Dict[str, Any]]:
        """Read a JSONL trace file back into event dicts."""
        with open(path) as handle:
            return Tracer.from_jsonl(handle.read())

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, network, capacity: Optional[int] = None) -> "Tracer":
        """Create a tracer and install it on a network.

        The network layer emits ``transmission`` and
        ``authenticated-broadcast`` events; the protocol driver emits
        ``execution-start`` / ``execution-end``; revocations appear as
        ``revocation`` events via the registry log hook.
        """
        tracer = cls(capacity=capacity)
        network.tracer = tracer
        return tracer
