"""Synthetic sensing workloads for examples, benches and long sessions.

The paper's motivating applications — battlefield monitoring, emergency
response — query physical fields: how many sensors detect an intruder,
what is the minimum temperature, the average radiation level.  This
module generates deterministic, spatially-correlated readings over a
deployment's geometry so scenarios exercise the protocol with realistic
structure instead of arbitrary constants:

* :class:`HotspotField` — one or more Gaussian hotspots (a fire, a
  source, a vehicle) on a background level; readings fall off with
  distance, optionally drifting over time.
* :class:`GradientField` — a linear ramp across the deployment area
  (temperature across a hillside).
* :class:`UniformNoiseField` — iid readings in a range (the null
  workload).

Every field is deterministic given ``(seed, epoch)``; integer-valued
variants feed SUM/COUNT queries whose readings must be integers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import ConfigError
from .topology.graph import Topology


def _positions_or_raise(topology: Topology) -> Dict[int, Tuple[float, float]]:
    if not topology.positions:
        raise ConfigError(
            "this workload needs node positions; use a geometric/grid topology"
        )
    return topology.positions


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian source: peak intensity decaying with distance."""

    x: float
    y: float
    intensity: float
    radius: float
    drift: Tuple[float, float] = (0.0, 0.0)  # per-epoch movement

    def value_at(self, x: float, y: float, epoch: int) -> float:
        cx = self.x + self.drift[0] * epoch
        cy = self.y + self.drift[1] * epoch
        distance_sq = (x - cx) ** 2 + (y - cy) ** 2
        return self.intensity * math.exp(-distance_sq / (2 * self.radius**2))


class HotspotField:
    """Background level plus Gaussian hotspots plus per-sensor noise."""

    def __init__(
        self,
        hotspots: Sequence[Hotspot],
        background: float = 20.0,
        noise: float = 0.5,
        seed: int = 0,
        integer: bool = False,
    ) -> None:
        if noise < 0:
            raise ConfigError("noise must be non-negative")
        self.hotspots = list(hotspots)
        self.background = background
        self.noise = noise
        self.seed = seed
        self.integer = integer

    def readings(self, topology: Topology, epoch: int = 0) -> Dict[int, float]:
        positions = _positions_or_raise(topology)
        readings: Dict[int, float] = {}
        for sensor in topology.sensor_ids:
            x, y = positions[sensor]
            value = self.background
            for hotspot in self.hotspots:
                value += hotspot.value_at(x, y, epoch)
            if self.noise:
                rng = random.Random(("hotspot", self.seed, epoch, sensor).__repr__())
                value += rng.uniform(-self.noise, self.noise)
            readings[sensor] = float(round(value)) if self.integer else value
        return readings


class GradientField:
    """A linear ramp: reading = low + (high - low) * projected position."""

    def __init__(
        self,
        low: float = 0.0,
        high: float = 100.0,
        axis: str = "x",
        area: float = 1.0,
        integer: bool = False,
    ) -> None:
        if axis not in ("x", "y"):
            raise ConfigError("axis must be 'x' or 'y'")
        if area <= 0:
            raise ConfigError("area must be positive")
        self.low = low
        self.high = high
        self.axis = axis
        self.area = area
        self.integer = integer

    def readings(self, topology: Topology, epoch: int = 0) -> Dict[int, float]:
        positions = _positions_or_raise(topology)
        readings: Dict[int, float] = {}
        for sensor in topology.sensor_ids:
            x, y = positions[sensor]
            coordinate = x if self.axis == "x" else y
            fraction = max(0.0, min(1.0, coordinate / self.area))
            value = self.low + (self.high - self.low) * fraction
            readings[sensor] = float(round(value)) if self.integer else value
        return readings


class UniformNoiseField:
    """iid readings in ``[low, high]`` — the structure-free workload."""

    def __init__(
        self, low: float = 0.0, high: float = 100.0, seed: int = 0, integer: bool = False
    ) -> None:
        if high < low:
            raise ConfigError("high must be >= low")
        self.low = low
        self.high = high
        self.seed = seed
        self.integer = integer

    def readings(self, topology: Topology, epoch: int = 0) -> Dict[int, float]:
        readings: Dict[int, float] = {}
        for sensor in topology.sensor_ids:
            rng = random.Random(("uniform", self.seed, epoch, sensor).__repr__())
            value = rng.uniform(self.low, self.high)
            readings[sensor] = float(round(value)) if self.integer else value
        return readings
