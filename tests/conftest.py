"""Shared fixtures for the test suite.

Deployment fixtures use the downsized key configuration
(:func:`repro.config.small_test_config`) so small topologies get
near-certain edge-key coverage; paper-scale parameters are exercised in
the analysis tests and the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro import build_deployment, small_test_config
from repro.config import ExperimentConfig, KeyConfig, ProtocolConfig, RevocationConfig
from repro.topology import grid_topology, line_topology, star_topology


@pytest.fixture(scope="session", autouse=True)
def _shutdown_worker_pool():
    """Tear down the campaign runner's persistent worker pool after the
    suite, so pytest exits promptly instead of waiting on idle forked
    workers (they are spawned lazily by any campaign/parallelism test)."""
    yield
    from repro.campaign.runner import shutdown_worker_pool

    shutdown_worker_pool()


@pytest.fixture
def config() -> ExperimentConfig:
    return small_test_config()


@pytest.fixture
def deployment():
    """A 30-sensor connected geometric deployment, no adversary."""
    return build_deployment(num_nodes=30, seed=42)


@pytest.fixture
def line_deployment():
    """A 10-node line (worst-case depth); depth bound covers it."""
    return build_deployment(
        config=small_test_config(depth_bound=12),
        topology=line_topology(10),
        seed=7,
    )


@pytest.fixture
def grid_deployment():
    """A 5x5 grid (depth 8 from the corner base station)."""
    return build_deployment(
        config=small_test_config(depth_bound=10),
        topology=grid_topology(5, 5),
        seed=7,
    )


def make_attacked_deployment(
    malicious_ids,
    topology=None,
    depth_bound: int = 12,
    seed: int = 7,
    theta: int | None = None,
):
    """Helper used across adversarial tests."""
    config = small_test_config(depth_bound=depth_bound)
    if theta is not None:
        from dataclasses import replace

        config = replace(config, revocation=RevocationConfig(theta=theta))
    return build_deployment(
        config=config,
        topology=topology if topology is not None else line_topology(10),
        malicious_ids=malicious_ids,
        seed=seed,
    )


def default_readings(topology, minimum_at=None, base=100.0):
    readings = {i: base + i for i in topology.sensor_ids}
    if minimum_at is not None:
        readings[minimum_at] = 1.0
    return readings


def assert_only_malicious_revoked(deployment, malicious_ids):
    """The Lemma 4/5 safety invariant, asserted from omniscient state."""
    adversary_keys = deployment.network.adversary_pool_indices()
    for sensor in deployment.registry.revoked_sensors:
        assert sensor in malicious_ids, f"honest sensor {sensor} was revoked"
    for key in deployment.registry.revoked_keys:
        assert key in adversary_keys, f"key {key} not held by the adversary was revoked"
