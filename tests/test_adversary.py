"""Adversary machinery: loot boundaries, mimicry parity, strategy hooks."""

from __future__ import annotations

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import (
    Adversary,
    ChokingFloodStrategy,
    DropMinimumStrategy,
    PassiveStrategy,
    PolicyStrategy,
    Strategy,
)
from repro.errors import ProtocolError
from repro.topology import grid_topology


@pytest.fixture
def attacked():
    dep = build_deployment(num_nodes=20, seed=31, malicious_ids={3, 8})
    adv = Adversary(dep.network, PassiveStrategy(), seed=31)
    return dep, adv


class TestLootBoundaries:
    def test_loot_is_exactly_compromised_material(self, attacked):
        dep, adv = attacked
        assert set(adv.loot) == {3, 8}
        expected = set(dep.registry.ring(3).indices) | set(dep.registry.ring(8).indices)
        assert set(adv.pooled_keys) == expected
        assert dep.network.adversary_pool_indices() == frozenset(expected)

    def test_cannot_mac_outside_loot(self, attacked):
        dep, adv = attacked
        outside = next(
            i for i in range(dep.config.keys.pool_size) if not adv.holds(i)
        )
        with pytest.raises(ProtocolError):
            adv.pool_key(outside)

    def test_sensor_keys_only_for_compromised(self, attacked):
        dep, adv = attacked
        assert adv.sensor_key(3) == dep.registry.sensor_key(3)
        with pytest.raises(KeyError):
            adv.sensor_key(5)

    def test_signed_reading_verifies_forged_does_not(self, attacked):
        from repro.crypto.mac import verify_mac

        dep, adv = attacked
        nonce = b"n"
        signed = adv.sign_reading(3, 7.0, nonce)
        assert verify_mac(
            dep.registry.sensor_key(3), signed.mac, 3, 0, 7.0, nonce
        )
        forged = adv.forge_reading(5, 7.0)
        assert not verify_mac(dep.registry.sensor_key(5), forged.mac, 5, 0, 7.0, nonce)


class TestMimicryParity:
    """A passive adversary must be behaviourally indistinguishable from
    honest sensors: same result, same vetoes, no revocations."""

    def test_result_identical_with_and_without_compromise(self):
        readings = None
        results = {}
        for malicious in (frozenset(), frozenset({3, 8})):
            dep = build_deployment(num_nodes=20, seed=31, malicious_ids=malicious)
            adv = Adversary(dep.network, PassiveStrategy(), seed=31) if malicious else None
            protocol = VMATProtocol(dep.network, adversary=adv)
            readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
            readings[13] = 3.0
            results[malicious] = protocol.execute(MinQuery(), readings)
        clean, compromised = results.values()
        assert clean.outcome == compromised.outcome
        assert clean.estimate == compromised.estimate == 3.0

    def test_passive_malicious_answers_predicate_tests_truthfully(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5},
            seed=4,
        )
        adv = Adversary(dep.network, PassiveStrategy(), seed=4)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        # Passive malicious node kept audit records like an honest one.
        state = adv.state[5]
        assert state.level is not None
        assert state.audit.agg_sends

    def test_passive_malicious_vetoes_when_its_value_dropped(self):
        """A passive compromised sensor whose value an HONEST protocol
        bug would drop... here: its value is the minimum and propagates,
        so no veto; then we artificially broadcast too-high minima and
        check the mimic vetoes."""
        from repro.core.confirmation import run_confirmation
        from repro.core.tree import form_tree

        dep = build_deployment(num_nodes=15, seed=6, malicious_ids={4})
        adv = Adversary(dep.network, PassiveStrategy(), seed=6)
        adv.begin_execution({4: 1.0}, {4: [1.0]}, {4: [adv.sign_reading(4, 1.0, b"n")]})
        for node_id, node in dep.network.nodes.items():
            node.begin_execution(reading=50.0)
            node.query_values = [50.0]
        form_tree(dep.network, adv, dep.config.protocol.depth_bound)
        result = run_confirmation(
            dep.network, adv, dep.config.protocol.depth_bound, b"n", [10.0]
        )
        assert result.valid_veto is not None
        assert result.valid_veto[0].sensor_id == 4


class TestPolicyKnob:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ProtocolError):
            PolicyStrategy(predtest="sometimes")

    def test_policies_answer_as_documented(self):
        dep = build_deployment(num_nodes=10, seed=1, malicious_ids={2})
        adv = Adversary(dep.network, PolicyStrategy(), seed=1)
        assert PolicyStrategy("truthful").predtest_answer(adv, None, 2, True) is True
        assert PolicyStrategy("truthful").predtest_answer(adv, None, 2, False) is False
        assert PolicyStrategy("deny").predtest_answer(adv, None, 2, True) is False
        assert PolicyStrategy("lie_yes").predtest_answer(adv, None, 2, False) is True


class TestChokingFlood:
    def test_flood_saturates_capacity_but_vmat_survives(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5, 6},
            seed=17,
        )
        adv = Adversary(dep.network, ChokingFloodStrategy(), seed=17)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        result = protocol.execute(MinQuery(), readings)
        # Junk vetoes flood the network, but VMAT either pinpoints the
        # junk or the legitimate veto still triggers pinpointing — the
        # attack can never produce a wrong accepted result or a stall.
        assert result.revocations or (
            result.produced_result and result.estimate == 1.0
        )
