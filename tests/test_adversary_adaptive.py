"""Adaptive Byzantine behaviour (the attack model's "arbitrarily and
adaptively")."""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import AdaptiveStrategy, Adversary
from repro.topology import line_topology

from tests.conftest import assert_only_malicious_revoked


def scenario(patience=2, escalate_after=3, seed=13):
    dep = build_deployment(
        config=small_test_config(depth_bound=12),
        topology=line_topology(9),
        malicious_ids={4},
        seed=seed,
    )
    strategy = AdaptiveStrategy(patience=patience, escalate_after=escalate_after)
    adv = Adversary(dep.network, strategy, seed=seed)
    protocol = VMATProtocol(dep.network, adversary=adv)
    readings = {i: 60.0 + i for i in dep.topology.sensor_ids}
    readings[8] = 1.0
    return dep, strategy, protocol, readings


class TestAdaptiveEscalation:
    def test_lurking_executions_are_clean(self):
        dep, strategy, protocol, readings = scenario(patience=3)
        for _ in range(3):
            result = protocol.execute(MinQuery(), readings)
            assert strategy.mode == "lurk"
            assert result.produced_result
            assert result.estimate == 1.0
            assert not result.revocations

    def test_escalation_through_modes(self):
        dep, strategy, protocol, readings = scenario(patience=1, escalate_after=2)
        modes_seen = []
        for _ in range(40):
            result = protocol.execute(MinQuery(), readings)
            modes_seen.append(strategy.mode)
            if result.produced_result and strategy.mode != "lurk":
                break
        assert "lurk" in modes_seen
        assert "drop" in modes_seen
        assert "junk" in modes_seen

    def test_adaptivity_never_breaks_safety(self):
        dep, strategy, protocol, readings = scenario(patience=1, escalate_after=2)
        for _ in range(40):
            result = protocol.execute(MinQuery(), readings)
            assert_only_malicious_revoked(dep, {4})
            if result.produced_result and strategy.mode == "junk":
                break

    def test_every_hostile_execution_pays(self):
        dep, strategy, protocol, readings = scenario(patience=1, escalate_after=2)
        hostile_results = []
        for _ in range(40):
            result = protocol.execute(MinQuery(), readings)
            if strategy.mode != "lurk" and not result.produced_result:
                hostile_results.append(result)
            if len(hostile_results) >= 5:
                break
        assert hostile_results
        for result in hostile_results:
            assert result.revocations
