"""Omission (relay-drop) and replay adversaries."""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, RelayDropStrategy, ReplayStrategy
from repro.topology import grid_topology, line_topology

from tests.conftest import assert_only_malicious_revoked


class TestRelayDrop:
    def test_silent_node_routed_around(self):
        """On a grid the honest component stays connected, so a silent
        compromised node changes nothing."""
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5},
            seed=3,
        )
        adv = Adversary(dep.network, RelayDropStrategy(), seed=3)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.5
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert result.estimate == 1.5
        assert not result.revocations

    def test_silence_that_swallows_minimum_is_pinpointed(self):
        """The silent sensor wins the tree race (malicious sensors act
        first each interval) and becomes the min-holder's parent; its
        aggregation silence drops the minimum, but the vetoer still has
        honest neighbours for SOF, so the veto lands and the trail ends
        at the silent sensor's boundary."""
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={6},
            seed=3,
        )
        adv = Adversary(dep.network, RelayDropStrategy(), seed=3)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[10] = 1.5  # a neighbour of the silent node 6
        result = protocol.execute(MinQuery(), readings)
        if result.tree.parents.get(10) == [6]:
            # The intended scenario: 6 adopted 10 and dropped its value.
            assert result.outcome is ExecutionOutcome.VETO_PINPOINT
            assert result.revocations
            assert_only_malicious_revoked(dep, {6})
        else:  # pragma: no cover - topology/seed drift guard
            assert result.produced_result and result.estimate == 1.5

    def test_total_silence_on_a_cut_vertex_partitions(self):
        """A sensor that suppresses even tree beacons partitions its
        subtree; the paper's semantics: answer for the base station's
        component.  We model that with a beacon-suppressing subclass."""
        from repro.adversary import Strategy

        class TotalSilence(RelayDropStrategy):
            def tree_interval(self, adv, ctx, node_id, k):
                return  # not even beacons

        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=3,
        )
        adv = Adversary(dep.network, TotalSilence(), seed=3)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.5  # stranded beyond the cut vertex
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert result.estimate == 31.0  # minimum of the reachable component

    def test_silent_node_does_not_break_predicate_tests(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5, 6},
            seed=4,
        )
        adv = Adversary(dep.network, RelayDropStrategy(), seed=4)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.5
        session = protocol.run_session(MinQuery(), readings, max_executions=80)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {5, 6})


class TestReplay:
    def test_replayed_minimum_rejected_as_junk(self):
        """Nonce freshness (Section IV-B): last execution's perfectly
        valid minimum is junk this time."""
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=5,
        )
        adv = Adversary(dep.network, ReplayStrategy(), seed=5)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.5

        first = protocol.execute(MinQuery(), readings)
        # First execution: nothing to replay yet -> honest-equivalent.
        assert first.produced_result

        second = protocol.execute(MinQuery(), readings)
        assert second.outcome is ExecutionOutcome.JUNK_AGGREGATION_PINPOINT
        assert second.revocations
        assert_only_malicious_revoked(dep, {3})

    def test_replay_session_converges(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=5,
        )
        adv = Adversary(dep.network, ReplayStrategy(), seed=5)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.5
        for _ in range(30):
            result = protocol.execute(MinQuery(), readings)
            if 3 in dep.registry.revoked_sensors:
                break
        assert_only_malicious_revoked(dep, {3})
