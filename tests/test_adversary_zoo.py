"""Tests for :mod:`repro.adversary.zoo` — the strategy registry.

Four layers, each derived from the registry itself so a new strategy is
automatically covered (and an unregistered one fails collection):

* **completeness** — every concrete strategy class in
  ``repro.adversary.strategies`` is reachable from a zoo entry (checked
  at import time: a strategy without a detection contract fails test
  collection, not just one test);
* **metadata + spec round-trip** — every entry carries valid
  family/capability/section/contract metadata, and
  ``make_strategy`` → ``strategy_spec`` → JSON → ``strategy_from_spec``
  reproduces the same configuration;
* **detection contracts** — for every entry, the scenario its contract
  pins (line(10), planted minimum downstream of the adversary, quiet
  fault injector iff ``contract.faults``) produces the contracted
  outcome class, and no honest sensor is ever revoked;
* **behavioral properties** — same seed ⇒ bit-identical metrics across
  two runs, and single-node strategies never read another compromised
  node's state (the capability class is honored, not just declared).
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import (
    CAPABILITY_CLASSES,
    FAMILIES,
    OUTCOME_CLASSES,
    STRATEGY_REGISTRY,
    ZOO,
    Adversary,
    DetectionContract,
    Strategy,
    make_strategy,
    strategy_from_spec,
    strategy_spec,
)
from repro.adversary.strategies import adaptive, classic, colluding
from repro.adversary.strategies.classic import PolicyStrategy, WormholeStrategy
from repro.adversary.strategies.colluding import ColludingStrategy, PerNodeStrategy
from repro.errors import ProtocolError
from repro.faults import FaultInjector, FaultPlan
from repro.topology import line_topology

# ----------------------------------------------------------------------
# Collection-time completeness guard
# ----------------------------------------------------------------------
#: Classes that legitimately carry no zoo entry: abstract bases, the
#: per-node combinator (parameterized by other strategies, so it has no
#: single contract), and the raw wormhole (superseded in the zoo by
#: ZooWormholeStrategy, whose endpoints also join the tree honestly).
_EXEMPT = {Strategy, PolicyStrategy, ColludingStrategy, PerNodeStrategy, WormholeStrategy}


def _concrete_strategy_classes():
    found = set()
    for module in (classic, adaptive, colluding):
        for obj in vars(module).values():
            if (
                inspect.isclass(obj)
                and issubclass(obj, Strategy)
                and obj.__module__ == module.__name__
            ):
                found.add(obj)
    return found


_UNREGISTERED = sorted(
    cls.__name__
    for cls in _concrete_strategy_classes() - _EXEMPT
    if cls not in {info.factory for info in ZOO.values()}
)
# Failing here (at import, i.e. collection) is the point: a strategy
# merged without a detection contract must not silently skip the table.
assert not _UNREGISTERED, (
    f"strategies missing a zoo entry + detection contract: {_UNREGISTERED}"
)

ALL_NAMES = sorted(ZOO)
SINGLE_NODE = [n for n in ALL_NAMES if ZOO[n].capability == "single-node"]


# ----------------------------------------------------------------------
# The contract scenario (the same shape the tournament cells pin)
# ----------------------------------------------------------------------
def run_contract_scenario(name: str, seed: int = 11, malicious=None):
    """Run one zoo strategy under its contract's pinned scenario.

    Line of 10 with the honest minimum planted *downstream* of the
    compromised region, so drop/forge/choke strategies all have
    something to bite on; a quiet fault injector iff the contract says
    the outcome only holds in benign mode.
    """
    info = ZOO[name]
    contract = info.contract
    topology = line_topology(10)
    if malicious is None:
        malicious = {4} if contract.min_malicious < 2 else {3, 6}
    deployment = build_deployment(
        config=small_test_config(depth_bound=12),
        topology=topology,
        malicious_ids=set(malicious),
        seed=seed,
    )
    network = deployment.network
    if contract.faults:
        FaultInjector(FaultPlan(name="quiet"), seed=seed).attach(network)
    adversary = Adversary(network, make_strategy(name), seed=seed)
    protocol = VMATProtocol(network, adversary=adversary)
    readings = {i: 100.0 + i for i in topology.sensor_ids}
    readings[7] = 1.0
    results = [protocol.execute(MinQuery(), readings) for _ in range(contract.executions)]
    return network, adversary, results


def _revoked_honest(network):
    return [
        node_id
        for node_id in network.nodes
        if network.registry.revocation.is_sensor_revoked(node_id)
        and node_id not in network.malicious_ids
    ]


# ----------------------------------------------------------------------
# Metadata
# ----------------------------------------------------------------------
class TestRegistryMetadata:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_entry_is_complete(self, name: str) -> None:
        info = ZOO[name]
        assert info.name == name
        assert info.family in FAMILIES
        assert info.capability in CAPABILITY_CLASSES
        assert info.section, f"{name}: no paper-section provenance"
        assert info.description, f"{name}: no description"
        assert info.contract.outcome in OUTCOME_CLASSES
        assert info.contract.executions >= 1
        assert info.contract.min_malicious >= 1

    def test_colluding_family_implies_colluding_capability(self) -> None:
        for name in ALL_NAMES:
            if ZOO[name].family == "colluding":
                assert ZOO[name].capability == "colluding", name

    def test_unknown_outcome_class_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="unknown outcome class"):
            DetectionContract(outcome="slapped-on-the-wrist")

    def test_back_compat_registry_is_the_paramless_slice(self) -> None:
        assert set(STRATEGY_REGISTRY) == {
            name for name, info in ZOO.items() if not info.params
        }
        for name, factory in STRATEGY_REGISTRY.items():
            assert factory is ZOO[name].factory

    def test_fuzzer_walks_the_whole_zoo(self) -> None:
        from repro.invariants.fuzz import STRATEGIES

        assert STRATEGIES == tuple(sorted(ZOO))

    def test_tournament_grid_covers_the_whole_zoo(self) -> None:
        from repro.campaign import get_scenario

        grid = get_scenario("tournament").grid
        assert set(grid["strategy"]) == set(ZOO)


# ----------------------------------------------------------------------
# Spec round-trip
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_json_round_trip(self, name: str) -> None:
        strategy = make_strategy(name)
        spec = json.loads(json.dumps(strategy_spec(strategy)))
        rebuilt = strategy_from_spec(spec)
        assert type(rebuilt) is type(strategy)
        assert rebuilt.zoo_name == strategy.zoo_name == name
        assert rebuilt.predtest == strategy.predtest == ZOO[name].contract.predtest

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_predtest_override_round_trips(self, name: str) -> None:
        strategy = make_strategy(name, predtest="coin")
        rebuilt = strategy_from_spec(strategy_spec(strategy))
        assert rebuilt.predtest == "coin"

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="unknown strategy"):
            make_strategy("zero-day")

    def test_extra_spec_keys_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="unknown strategy-spec keys"):
            strategy_from_spec({"name": "passive", "budget": 9000})

    def test_nameless_spec_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="requires a 'name'"):
            strategy_from_spec({"predtest": "deny"})

    def test_hand_built_strategy_has_no_spec(self) -> None:
        from repro.adversary.strategies.classic import PassiveStrategy

        with pytest.raises(ProtocolError, match="not built by make_strategy"):
            strategy_spec(PassiveStrategy())


# ----------------------------------------------------------------------
# Detection contracts (the zoo's core promise, table-driven)
# ----------------------------------------------------------------------
class TestDetectionContracts:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_contract_holds(self, name: str) -> None:
        contract = ZOO[name].contract
        network, _, results = run_contract_scenario(name)
        outcomes = [r.outcome.value for r in results]
        revocations = sum(len(r.revocations) for r in results)

        assert not _revoked_honest(network), (
            f"{name}: honest sensors revoked — Lemmas 4/5 violated"
        )
        if contract.outcome == "revoked":
            assert revocations >= 1, f"{name}: contract says revoked, got {outcomes}"
        elif contract.outcome == "harmless":
            assert revocations == 0, f"{name}: harmless strategy got revoked"
            assert outcomes == ["result"] * contract.executions
            for result in results:
                assert result.estimate == result.honest_true_value == 1.0
        elif contract.outcome == "choked-but-safe":
            assert revocations == 0
            assert outcomes == ["result"] * contract.executions
            for result in results:
                # Degraded but honest: the estimate covers exactly the
                # reachable honest component, never a forged value.
                assert result.estimate == result.reachable_honest_true_value
                assert result.estimate != result.honest_true_value
        elif contract.outcome == "inconclusive-under-faults":
            assert contract.faults, f"{name}: outcome class requires faults=True"
            assert revocations == 0
            assert "inconclusive" in outcomes, (
                f"{name}: expected a deferred (inconclusive) execution, got {outcomes}"
            )
        else:  # pragma: no cover - OUTCOME_CLASSES is closed
            pytest.fail(f"unhandled outcome class {contract.outcome!r}")


# ----------------------------------------------------------------------
# Behavioral properties
# ----------------------------------------------------------------------
class TestSeedDeterminism:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_same_seed_same_metrics(self, name: str) -> None:
        net_a, _, results_a = run_contract_scenario(name, seed=23)
        net_b, _, results_b = run_contract_scenario(name, seed=23)
        assert net_a.metrics.to_dict() == net_b.metrics.to_dict()
        assert [r.outcome.value for r in results_a] == [
            r.outcome.value for r in results_b
        ]
        assert [r.estimate for r in results_a] == [r.estimate for r in results_b]


class _RecordingState(dict):
    """adv.state stand-in that records cross-node reads during hooks."""

    def __init__(self, data):
        super().__init__(data)
        self.current_node = None
        self.cross_reads = []

    def _note(self, key):
        if self.current_node is not None and key != self.current_node:
            self.cross_reads.append((self.current_node, key))

    def __getitem__(self, key):
        self._note(key)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._note(key)
        return super().get(key, default)


def _instrument(adversary: Adversary) -> _RecordingState:
    """Swap in the recording state and scope hook dispatch to a node."""
    proxy = _RecordingState(adversary.state)
    adversary.state = proxy
    for hook in ("tree_interval", "agg_interval", "conf_interval", "predtest_interval"):
        original = getattr(adversary, hook)

        def wrapped(ctx, node_id, k, _original=original):
            proxy.current_node = node_id
            try:
                return _original(ctx, node_id, k)
            finally:
                proxy.current_node = None

        setattr(adversary, hook, wrapped)
    return proxy


class TestCapabilityClassHonored:
    """`capability` is a behavioral claim, not a label: single-node
    strategies must work from one compromised sensor's view alone."""

    def _run_instrumented(self, name: str):
        topology = line_topology(10)
        deployment = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=topology,
            malicious_ids={3, 6},
            seed=11,
        )
        network = deployment.network
        adversary = Adversary(network, make_strategy(name), seed=11)
        proxy = _instrument(adversary)
        protocol = VMATProtocol(network, adversary=adversary)
        readings = {i: 100.0 + i for i in topology.sensor_ids}
        readings[7] = 1.0
        for _ in range(2):
            protocol.execute(MinQuery(), readings)
        return proxy

    @pytest.mark.parametrize("name", SINGLE_NODE)
    def test_single_node_never_reads_peer_state(self, name: str) -> None:
        proxy = self._run_instrumented(name)
        assert not proxy.cross_reads, (
            f"{name} is declared single-node but read peer state: "
            f"{proxy.cross_reads[:5]}"
        )

    def test_instrument_detects_collusion(self) -> None:
        # Positive control: the cover-for-accomplice colluders *must*
        # cross-read (that is their whole mechanism), proving the
        # recording proxy actually sees such reads.
        proxy = self._run_instrumented("cover-accomplice")
        assert proxy.cross_reads
