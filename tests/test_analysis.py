"""Figure 7 / Figure 8 analysis drivers and statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    count_error_trials,
    expected_misrevocations,
    figure8,
    mean,
    misrevocation_trials,
    percentile,
    smallest_safe_theta,
    summarize,
)
from repro.analysis.approximation import protocol_count_trial
from repro.analysis.stats import standard_error
from repro.config import KeyConfig
from repro.errors import ConfigError

PAPER_KEYS = KeyConfig()  # r=250, u=100,000


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 50) == 5.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0], percentiles=(50, 90))
        assert set(summary) == {"mean", "p50", "p90"}

    def test_standard_error(self):
        assert standard_error([1.0, 1.0, 1.0]) == 0.0
        with pytest.raises(ValueError):
            standard_error([1.0])


class TestFigure7:
    def test_monotone_decreasing_in_theta(self):
        series = misrevocation_trials(1000, 5, range(1, 25), trials=20, seed=3)
        curve = [series.avg_misrevoked[t] for t in series.theta_values]
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_paper_claim_f1_theta7(self):
        """'with a single malicious sensor, we can identify that
        malicious sensor after it exposes roughly 7 edge keys, while
        incurring close-to-zero probability of mis-revoking'."""
        for n in (1_000, 10_000):
            series = misrevocation_trials(n, 1, range(1, 10), trials=30, seed=1)
            assert series.avg_misrevoked[7] < 0.2
            assert series.smallest_theta_below(1.0) <= 7

    def test_paper_claim_f20_theta27(self):
        """'to keep the average number of mis-revoked honest sensors
        below 1, θ needs to be 27 for 20 malicious sensors'."""
        series = misrevocation_trials(10_000, 20, range(20, 33), trials=15, seed=1)
        safe = series.smallest_theta_below(1.0)
        assert 24 <= safe <= 30  # the paper reads 27 off its plot

    def test_theta_an_order_of_magnitude_below_ring_size(self):
        safe = smallest_safe_theta(10_000, 20, PAPER_KEYS)
        assert safe < PAPER_KEYS.ring_size / 5  # ">90% reduction" claim

    def test_more_malicious_needs_larger_theta(self):
        assert smallest_safe_theta(10_000, 20) > smallest_safe_theta(10_000, 1)

    def test_monte_carlo_matches_closed_form(self):
        n, f, theta = 1_000, 5, 10
        series = misrevocation_trials(n, f, [theta], trials=60, seed=7)
        analytic = expected_misrevocations(n, f, theta)
        mc = series.avg_misrevoked[theta]
        # Poisson-ish counts: compare within a few standard errors.
        tolerance = 4 * math.sqrt(max(analytic, mc, 0.2) / 60) + 0.3
        assert abs(mc - analytic) <= max(tolerance, 0.5 * max(analytic, 0.2))

    def test_pure_python_fallback_agrees(self):
        a = misrevocation_trials(300, 2, [4, 8], trials=10, seed=5, use_numpy=True)
        b = misrevocation_trials(300, 2, [4, 8], trials=10, seed=5, use_numpy=False)
        # Different RNG streams, same distribution: crude agreement.
        for theta in (4, 8):
            assert abs(a.avg_misrevoked[theta] - b.avg_misrevoked[theta]) < max(
                3.0, 0.8 * max(a.avg_misrevoked[theta], 1.0)
            )

    def test_rejects_degenerate_population(self):
        with pytest.raises(ConfigError):
            misrevocation_trials(5, 5, [1], trials=1)

    def test_smallest_theta_below_raises_when_sweep_too_short(self):
        series = misrevocation_trials(10_000, 20, [1, 2], trials=5, seed=1)
        with pytest.raises(ConfigError):
            series.smallest_theta_below(0.0001)


class TestFigure8:
    def test_average_error_below_10_percent_at_m100(self):
        """The paper's headline: 100 synopses give <10% average error."""
        series = count_error_trials([100, 1_000], num_synopses=100, trials=200, seed=2)
        for count in (100, 1_000):
            assert series.average(count) < 0.10

    def test_error_roughly_flat_in_count(self):
        # The estimator's relative error does not depend on the count —
        # the flat curves of Figure 8.
        series = figure8(counts=(10, 100, 1_000, 10_000), trials=150, seed=3)
        averages = [series.average(c) for c in series.counts]
        assert max(averages) / min(averages) < 1.8

    def test_percentiles_ordered(self):
        series = count_error_trials([500], trials=100, seed=4)
        assert series.percentile(500, 50) <= series.percentile(500, 90)
        assert series.percentile(500, 90) <= series.percentile(500, 99)

    def test_more_synopses_reduce_error(self):
        small = count_error_trials([200], num_synopses=25, trials=150, seed=5)
        large = count_error_trials([200], num_synopses=400, trials=150, seed=5)
        assert large.average(200) < small.average(200)

    def test_rows_structure(self):
        series = count_error_trials([10], trials=20, seed=6)
        rows = series.rows(percentiles=(50, 90))
        assert rows[0]["count"] == 10.0
        assert {"average", "p50", "p90"} <= set(rows[0])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            count_error_trials([0], trials=10)
        with pytest.raises(ConfigError):
            count_error_trials([10], trials=0)

    def test_end_to_end_protocol_matches_model(self):
        """The deployed pipeline (PRF synopses, MACs, tree, SOF) should
        show the same error scale as the distributional model."""
        errors = [
            protocol_count_trial(35, 12, num_synopses=60, seed=seed)[1]
            for seed in range(3)
        ]
        assert all(e < 0.6 for e in errors)
        assert sum(errors) / len(errors) < 0.35
