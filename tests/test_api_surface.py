"""API surface hygiene: exports resolve, public things are documented.

These meta-tests keep the library adoptable: ``__all__`` never lies,
every public module/class/function carries a docstring, and the
package imports cleanly without side effects beyond definition."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.adversary",
    "repro.analysis",
    "repro.baselines",
    "repro.campaign",
    "repro.core",
    "repro.crypto",
    "repro.faults",
    "repro.keys",
    "repro.net",
    "repro.sim",
    "repro.topology",
]


def all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    # __main__ exists to be executed, not imported for its API.
    names.discard("repro.__main__")
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_dunder_all_resolves(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_objects_are_documented(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{package_name}.{name} lacks a docstring"


def test_top_level_quickstart_names():
    # The README's imports must keep working.
    for name in (
        "build_deployment",
        "VMATProtocol",
        "MinQuery",
        "MaxQuery",
        "CountQuery",
        "SumQuery",
        "AverageQuery",
        "ExecutionOutcome",
    ):
        assert hasattr(repro, name)


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1
