"""Baselines: naive collect-all, alarm-only, unverified flooding,
set-sampling cost model."""

from __future__ import annotations

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, ChokingFloodStrategy, DropMinimumStrategy
from repro.baselines import (
    AlarmOnlyProtocol,
    AlarmOutcome,
    SetSamplingCostModel,
    naive_collection_cost,
    run_unverified_confirmation,
    vmat_query_cost,
)
from repro.baselines.naive import NAIVE_REPORT_BYTES
from repro.config import ProtocolConfig
from repro.core.confirmation import run_confirmation
from repro.core.tree import form_tree
from repro.topology import grid_topology, line_topology, star_topology


class TestNaiveCollection:
    def test_line_cost_quadratic_at_bottleneck(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(10),
            seed=1,
        )
        tree = form_tree(dep.network, None, 12)
        cost = naive_collection_cost(tree.levels, tree.parents)
        # Node 1 relays all 9 readings: sent 9r + received 8r.
        assert cost.per_node_bytes[1] == 17 * NAIVE_REPORT_BYTES
        assert cost.max_node_bytes == cost.per_node_bytes[1]

    def test_star_cost_is_one_report_each(self):
        dep = build_deployment(topology=star_topology(8), seed=1)
        tree = form_tree(dep.network, None, 4)
        cost = naive_collection_cost(tree.levels, tree.parents)
        assert all(v == NAIVE_REPORT_BYTES for v in cost.per_node_bytes.values())
        assert cost.base_station_rx_bytes == 7 * NAIVE_REPORT_BYTES

    def test_paper_comparison_orders_of_magnitude(self):
        """Section IX: naive >= 80 KB at n=10,000 vs VMAT ~2.4 KB."""
        protocol = ProtocolConfig()  # m = 100, 24-byte synopses
        vmat = vmat_query_cost(protocol)
        assert vmat == 2_400
        naive_bottleneck = 10_000 * NAIVE_REPORT_BYTES  # BS neighbourhood
        assert naive_bottleneck >= 80_000
        assert 10 <= naive_bottleneck / vmat <= 200  # "one to two orders"

    def test_ratio_helper(self):
        dep = build_deployment(topology=star_topology(5), seed=1)
        tree = form_tree(dep.network, None, 3)
        cost = naive_collection_cost(tree.levels, tree.parents)
        assert cost.ratio_to(1) == cost.max_node_bytes
        with pytest.raises(ValueError):
            cost.ratio_to(0)


class TestAlarmOnly:
    def _attacked(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=9,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=9)
        return dep, adv

    def test_honest_run_returns_result(self):
        dep = build_deployment(num_nodes=15, seed=2)
        protocol = AlarmOnlyProtocol(dep.network)
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is AlarmOutcome.RESULT
        assert result.estimate == 21.0

    def test_attack_raises_alarm_but_learns_nothing(self):
        dep, adv = self._attacked()
        protocol = AlarmOnlyProtocol(dep.network, adversary=adv)
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is AlarmOutcome.ALARM
        assert not dep.registry.revoked_keys  # no pinpointing, no progress

    def test_persistent_attacker_stalls_forever(self):
        """The Section I motivation: a single malicious sensor keeps
        failing verification without exposing itself."""
        dep, adv = self._attacked()
        protocol = AlarmOnlyProtocol(dep.network, adversary=adv)
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        session = protocol.run_session(MinQuery(), readings, max_executions=15)
        assert session.stalled
        assert len(session.executions) == 15
        assert not dep.registry.revoked_keys

    def test_vmat_resolves_the_same_scenario(self):
        dep, adv = self._attacked()
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        session = protocol.run_session(MinQuery(), readings, max_executions=100)
        assert session.final_estimate is not None


class TestUnverifiedFlooding:
    def _setup(self, malicious, strategy, seed=3):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids=malicious,
            seed=seed,
        )
        adv = Adversary(dep.network, strategy, seed=seed) if malicious else None
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        for node_id, node in dep.network.nodes.items():
            node.begin_execution(reading=readings[node_id])
            node.query_values = [node.reading]
        if adv is not None:
            mal = dep.network.malicious_ids
            adv.begin_execution(
                {i: readings[i] for i in mal},
                {i: [readings[i]] for i in mal},
                {i: [] for i in mal},
            )
        form_tree(dep.network, adv, 10)
        return dep, adv

    def test_without_attack_valid_veto_arrives(self):
        dep, adv = self._setup(frozenset(), None)
        result = run_unverified_confirmation(dep.network, None, 10, b"n", [10.0])
        assert result.valid_veto_arrived
        assert result.honest_vetoers == 1

    def test_choking_attack_can_silence_the_baseline(self):
        dep, adv = self._setup({1, 2, 4, 5}, ChokingFloodStrategy(), seed=3)
        result = run_unverified_confirmation(dep.network, adv, 10, b"n", [10.0])
        # With chokers ringing the base station, the legitimate veto
        # drowns in relay queues: the corrupted result would stand and
        # nothing is learned about the attacker.
        assert result.spurious_vetoes_arrived > 0
        assert result.attack_succeeded
        assert not result.valid_veto_arrived

    def test_sof_survives_the_same_attack(self):
        dep, adv = self._setup({1, 2, 4, 5}, ChokingFloodStrategy(), seed=3)
        result = run_confirmation(dep.network, adv, 10, b"n", [10.0])
        # Lemma 1: SOF delivers *some* veto — silence is impossible.
        assert not result.silent


class TestSetSamplingModel:
    def test_logarithmic_rounds(self):
        model = SetSamplingCostModel()
        assert model.levels(1024) == 10
        assert model.flooding_rounds(1024) == 10 * 2 * 3

    def test_rounds_grow_with_n(self):
        model = SetSamplingCostModel()
        assert model.flooding_rounds(10_000) > model.flooding_rounds(100)

    def test_latency_ratio(self):
        model = SetSamplingCostModel()
        # VMAT's happy path is ~5 rounds; [29] needs Omega(log n).
        assert model.latency_ratio_vs_vmat(10_000, vmat_rounds=5.0) > 10


class TestInsecureTag:
    def _deployment(self, malicious=frozenset()):
        return build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids=malicious,
            seed=5,
        )

    def test_honest_tag_answers_cheaply(self):
        from repro.baselines import run_insecure_tag_min

        dep = self._deployment()
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        result = run_insecure_tag_min(dep.network, None, 12, readings)
        assert result.minimum == 1.0
        # Two flooding rounds: tree announce/flood + aggregation.
        assert result.flooding_rounds <= 3.0

    def test_dropper_silently_corrupts_tag(self):
        from repro.adversary import Adversary, DropMinimumStrategy
        from repro.baselines import run_insecure_tag_min

        dep = self._deployment(malicious={3})
        adv = Adversary(dep.network, DropMinimumStrategy(), seed=5)
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        result = run_insecure_tag_min(dep.network, adv, 12, readings)
        # The wrong answer stands, nothing alarms, nothing is revoked.
        assert result.minimum is not None and result.minimum > 1.0
        assert not dep.registry.revoked_keys

    def test_security_overhead_is_bounded(self):
        """VMAT's happy path costs ~2.5x TAG's rounds and bytes at MIN —
        the price of verifiability, not an order of magnitude."""
        from repro.baselines import run_insecure_tag_min

        dep = self._deployment()
        readings = {i: 20.0 + i for i in dep.topology.sensor_ids}
        tag = run_insecure_tag_min(dep.network, None, 12, readings)

        dep = self._deployment()
        protocol = VMATProtocol(dep.network)
        bytes_before = dep.network.metrics.total_bytes()
        result = protocol.execute(MinQuery(), readings)
        vmat_bytes = dep.network.metrics.total_bytes() - bytes_before
        assert result.produced_result
        assert result.flooding_rounds / tag.flooding_rounds <= 3.0
        assert vmat_bytes / max(tag.total_bytes, 1) <= 25.0
