"""The ``chaos`` scenario and the fault-plan CLI surface.

These are the campaign-facing guarantees of :mod:`repro.faults`: the
scenario is registered with a CI-sized reduced grid, a chaos cell is a
pure function of ``(params, seed)``, whole chaos runs replay to
byte-identical result stores, and a plan file rides into the grid via
``campaign run --fault-plan``.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    available_scenarios,
    compare_runs,
    get_scenario,
    run_campaign,
)
from repro.cli import main
from repro.errors import ConfigError

CELL_PARAMS = {"nodes": 16, "profile": "crash", "executions": 2}


def chaos_spec(name: str, profile: str = "crash") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        seed=7,
        scenarios=(
            ScenarioSpec(
                "chaos",
                {"nodes": (16,), "profile": (profile,), "executions": (2,)},
            ),
        ),
    )


class TestScenario:
    def test_registered_with_reduced_grid(self):
        assert "chaos" in available_scenarios()
        scenario = get_scenario("chaos")
        assert scenario.reduced_grid  # CI smoke slice exists
        assert set(scenario.reduced_grid["profile"]) <= {
            "crash", "partition", "burst", "clock", "mixed"
        }

    def test_cell_is_deterministic(self):
        scenario = get_scenario("chaos")
        a = scenario.run(dict(CELL_PARAMS), seed=11)
        b = scenario.run(dict(CELL_PARAMS), seed=11)
        assert a == b
        assert a["revocations"] == 0.0
        assert a["results_produced"] + a["inconclusive"] == CELL_PARAMS["executions"]

    def test_rejects_non_square_node_count(self):
        with pytest.raises(ConfigError, match="perfect square"):
            get_scenario("chaos").run(
                {"nodes": 15, "profile": "crash", "executions": 1}, seed=1
            )

    def test_explicit_fault_plan_axis_overrides_profile(self):
        from repro.faults import BurstLoss, FaultPlan
        from repro.seeding import canonical_json

        plan = FaultPlan(
            "handmade", events=(BurstLoss(loss_rate=0.3, start=1, end=40),)
        )
        params = dict(CELL_PARAMS, fault_plan=canonical_json(plan.to_dict()))
        metrics = get_scenario("chaos").run(params, seed=3)
        assert metrics["faults_injected"] >= 1.0
        assert metrics["revocations"] == 0.0


class TestRunDeterminism:
    def test_two_runs_produce_identical_stores(self, tmp_path):
        """The chaos-smoke CI gate, inline: replay and diff at zero tolerance."""
        store = ResultStore(tmp_path)
        first = run_campaign(chaos_spec("chaos-a"), store, jobs=1)
        second = run_campaign(chaos_spec("chaos-b"), store, jobs=1)
        assert first.failed == 0 and second.failed == 0
        report = compare_runs(
            store.get_run(first.run_id), store.get_run(second.run_id), threshold=0.0
        )
        assert report.passed, report.regressions


class TestFaultsCli:
    def test_example_validate_describe_round_trip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main([
            "faults", "example", "--profile", "mixed", "--nodes", "16",
            "--depth-bound", "6", "--seed", "3", "--output", str(plan_path),
        ]) == 0
        capsys.readouterr()

        assert main(["faults", "validate", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "chaos-mixed" in out

        assert main(["faults", "describe", str(plan_path)]) == 0
        assert "clock-drift" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "events": [{"kind": "meteor"}]}))
        assert main(["faults", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_campaign_run_accepts_fault_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main([
            "faults", "example", "--profile", "burst", "--nodes", "16",
            "--depth-bound", "6", "--output", str(plan_path),
        ]) == 0
        store = tmp_path / "store"
        assert main([
            "campaign", "run", "--scenario", "chaos",
            "--name", "plan-smoke", "--jobs", "1", "--store", str(store),
            "--fault-plan", str(plan_path),
        ]) == 0
        capsys.readouterr()
        runs = ResultStore(store).list_runs()
        assert len(runs) == 1
        records = runs[0].load_results()
        assert records and all(
            "fault_plan" in r["params"] and r["status"] == "ok" for r in records
        )
