"""The `python -m repro campaign ...` command group, end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def run_smoke(tmp_path, name="cli-smoke", jobs="1"):
    return main([
        "campaign", "run",
        "--scenario", "comm",
        "--replicates", "2",
        "--jobs", jobs,
        "--name", name,
        "--store", str(tmp_path),
    ])


class TestParser:
    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run"])
        assert args.jobs == 1
        assert args.store == ".campaigns"
        assert args.replicates == 1
        assert not args.full

    def test_compare_threshold(self):
        args = build_parser().parse_args(
            ["campaign", "compare", "a", "b", "--threshold", "0.1"]
        )
        assert args.threshold == 0.1


class TestEndToEnd:
    def test_run_report_validate_compare(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert run_smoke(store) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "executed" in out

        assert main(["campaign", "validate", "latest", "--store", str(store)]) == 0
        assert "is valid" in capsys.readouterr().out

        assert main(["campaign", "report", "latest", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "vmat_bytes" in out and "stderr" in out

        assert main([
            "campaign", "compare", "latest", "latest",
            "--store", str(store), "--threshold", "0",
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_rerun_resumes(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_smoke(store)
        capsys.readouterr()
        assert run_smoke(store) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "4 resumed" in out

    def test_report_writes_bench_payload(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_smoke(store, name="a")
        run_smoke(store, name="b")
        output = tmp_path / "BENCH_campaign.json"
        code = main([
            "campaign", "report", "b-" + _run_suffix(store, "b"),
            "--store", str(store),
            "--output", str(output),
            "--baseline", "a-" + _run_suffix(store, "a"),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["baseline_run_id"].startswith("a-")
        assert "speedup_vs_baseline" in payload
        assert payload["groups"]

    def test_spec_file_round_trip(self, tmp_path, capsys):
        from repro.campaign import CampaignSpec, ScenarioSpec

        spec = CampaignSpec(
            name="from-file",
            replicates=1,
            scenarios=(ScenarioSpec("comm", {"nodes": (1_000,), "synopses": (100,)}),),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        store = tmp_path / "store"
        code = main([
            "campaign", "run", "--spec", str(spec_path), "--store", str(store),
        ])
        assert code == 0
        assert "from-file" in capsys.readouterr().out

    def test_list_shows_runs_and_scenarios(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_smoke(store)
        capsys.readouterr()
        assert main(["campaign", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert "fig7" in out  # registered scenarios are listed

    def test_unknown_scenario_is_a_clean_error(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown scenario"):
            main([
                "campaign", "run", "--scenario", "not-real",
                "--store", str(tmp_path),
            ])


def _run_suffix(store, name):
    """Find the spec-hash suffix of the single run named ``name``."""
    for child in store.iterdir():
        if child.name.startswith(name + "-"):
            return child.name.split("-", 1)[1]
    raise AssertionError(f"no run named {name} in {store}")
