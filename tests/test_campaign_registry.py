"""Scenario registry: registration, lookup, payload validation."""

from __future__ import annotations

import pytest

from repro.campaign import available_scenarios, get_scenario, scenario
from repro.errors import ConfigError, ReproError


class TestBuiltins:
    def test_paper_scenarios_are_registered(self):
        names = available_scenarios()
        assert {"fig7", "fig8", "comm", "rounds"} <= set(names)

    def test_builtin_grids_are_present(self):
        for name in ("fig7", "fig8", "comm", "rounds"):
            scn = get_scenario(name)
            assert scn.grid, f"{name} lacks a paper-scale grid"
            assert scn.reduced_grid, f"{name} lacks a reduced grid"
            assert scn.description

    def test_default_grid_prefers_reduced(self):
        scn = get_scenario("fig7")
        assert scn.default_grid(reduced=True) == {
            k: tuple(v) for k, v in scn.reduced_grid.items()
        }
        assert scn.default_grid(reduced=False) == {k: tuple(v) for k, v in scn.grid.items()}

    def test_comm_scenario_reproduces_paper_bytes(self):
        metrics = get_scenario("comm").run({"nodes": 10_000, "synopses": 100}, seed=0)
        assert metrics["vmat_bytes"] == 2_400.0  # the paper's 2.4 KB
        assert metrics["naive_bytes"] >= 80_000.0
        assert 10 <= metrics["naive_over_vmat"] <= 200


class TestRegistration:
    def test_unknown_scenario_lists_available(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            get_scenario("not-a-scenario")

    def test_duplicate_registration_rejected(self):
        @scenario("test-dup-xyz", replace=True)
        def first(params, seed):
            """First."""
            return {"x": 1.0}

        with pytest.raises(ConfigError, match="already registered"):
            @scenario("test-dup-xyz")
            def second(params, seed):
                """Second."""
                return {"x": 2.0}

    def test_replace_allows_redefinition(self):
        @scenario("test-replace-xyz", replace=True)
        def first(params, seed):
            """First."""
            return {"x": 1.0}

        @scenario("test-replace-xyz", replace=True)
        def second(params, seed):
            """Second."""
            return {"x": 2.0}

        assert get_scenario("test-replace-xyz").run({}, 0) == {"x": 2.0}

    def test_description_falls_back_to_docstring(self):
        @scenario("test-doc-xyz", replace=True)
        def documented(params, seed):
            """One-line summary of the scenario.

            More detail.
            """
            return {"x": 1.0}

        assert get_scenario("test-doc-xyz").description == (
            "One-line summary of the scenario."
        )


class TestPayloadValidation:
    def test_metrics_are_coerced_to_float(self):
        @scenario("test-coerce-xyz", replace=True)
        def ints(params, seed):
            """Ints out."""
            return {"count": 3}

        metrics = get_scenario("test-coerce-xyz").run({}, 0)
        assert metrics == {"count": 3.0}
        assert isinstance(metrics["count"], float)

    def test_non_dict_payload_rejected(self):
        @scenario("test-bad-payload-xyz", replace=True)
        def bad(params, seed):
            """Bad."""
            return [1.0]

        with pytest.raises(ReproError, match="non-empty dict"):
            get_scenario("test-bad-payload-xyz").run({}, 0)

    def test_non_numeric_metric_rejected(self):
        @scenario("test-bad-metric-xyz", replace=True)
        def bad(params, seed):
            """Bad."""
            return {"label": "high"}

        with pytest.raises(ReproError, match="not a number"):
            get_scenario("test-bad-metric-xyz").run({}, 0)
