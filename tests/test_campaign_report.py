"""Aggregation, regression comparison and bench payloads."""

from __future__ import annotations

import math

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    aggregate_records,
    bench_payload,
    compare_runs,
    format_table,
    render_report,
    run_campaign,
    summarize_run,
)
from repro.campaign.spec import canonical_json


def fake_record(scenario, params, metrics, status="ok", cell_id=None):
    return {
        "cell_id": cell_id or f"{scenario}/" + ",".join(f"{k}={v}" for k, v in sorted(params.items())),
        "scenario": scenario,
        "params": params,
        "seed": 1,
        "status": status,
        "metrics": metrics,
        "error": None,
        "attempts": 1,
        "wall_time_s": 0.5,
    }


class TestAggregate:
    def test_groups_replicates_and_computes_stderr(self):
        records = [
            fake_record("s", {"n": 10, "replicate": 0}, {"m": 1.0}),
            fake_record("s", {"n": 10, "replicate": 1}, {"m": 3.0}),
            fake_record("s", {"n": 20, "replicate": 0}, {"m": 7.0}),
        ]
        groups = aggregate_records(records)
        key10 = ("s", canonical_json({"n": 10}))
        key20 = ("s", canonical_json({"n": 20}))
        assert set(groups) == {key10, key20}
        agg = groups[key10]["m"]
        assert agg.mean == 2.0 and agg.n == 2
        # sample stddev = sqrt(2), stderr = sqrt(2)/sqrt(2) = 1
        assert math.isclose(agg.stderr, 1.0)
        assert groups[key20]["m"].stderr == 0.0

    def test_failed_records_are_excluded(self):
        records = [
            fake_record("s", {"n": 1, "replicate": 0}, {"m": 1.0}),
            fake_record("s", {"n": 1, "replicate": 1}, {}, status="error"),
        ]
        groups = aggregate_records(records)
        assert groups[("s", canonical_json({"n": 1}))]["m"].n == 1

    def test_rerecorded_cell_takes_latest(self):
        cell = "s/n=1,replicate=0"
        records = [
            fake_record("s", {"n": 1, "replicate": 0}, {"m": 1.0}, cell_id=cell),
            fake_record("s", {"n": 1, "replicate": 0}, {"m": 9.0}, cell_id=cell),
        ]
        groups = aggregate_records(records)
        agg = groups[("s", canonical_json({"n": 1}))]["m"]
        assert agg.n == 1 and agg.mean == 9.0


def run_twice(tmp_path, seed_b=0):
    """Two runs of the same grid (optionally different campaign seed)."""
    store = ResultStore(tmp_path)
    grid = {"count": (50,), "synopses": (20,), "trials": (10,)}
    spec_a = CampaignSpec(
        name="base", seed=0, replicates=2, scenarios=(ScenarioSpec("fig8", grid),)
    )
    spec_b = CampaignSpec(
        name="new", seed=seed_b, replicates=2, scenarios=(ScenarioSpec("fig8", grid),)
    )
    a = run_campaign(spec_a, store, jobs=1)
    b = run_campaign(spec_b, store, jobs=1)
    return store, store.get_run(a.run_id), store.get_run(b.run_id)


class TestCompare:
    def test_identical_runs_pass_with_zero_regressions(self, tmp_path):
        _, run_a, run_b = run_twice(tmp_path, seed_b=0)
        report = compare_runs(run_a, run_b, threshold=0.0)
        assert report.passed
        assert report.regressions == [] and report.missing_groups == []
        assert report.compared > 0
        assert report.render().endswith("PASS")

    def test_self_comparison_passes(self, tmp_path):
        _, run_a, _ = run_twice(tmp_path)
        assert compare_runs(run_a, run_a, threshold=0.0).passed

    def test_shifted_metrics_regress(self, tmp_path):
        _, run_a, run_b = run_twice(tmp_path, seed_b=99)
        # Different seeds move the Monte-Carlo means; a zero threshold
        # must flag every moved metric as a regression.
        report = compare_runs(run_a, run_b, threshold=0.0)
        assert not report.passed
        assert report.regressions
        assert "REGRESSED" in report.render()
        # A generous threshold forgives sampling noise.
        assert compare_runs(run_a, run_b, threshold=5.0).passed

    def test_missing_group_fails(self, tmp_path):
        store, run_a, _ = run_twice(tmp_path)
        smaller = CampaignSpec(
            name="smaller",
            seed=0,
            replicates=1,
            scenarios=(ScenarioSpec("comm", {"nodes": (1_000,), "synopses": (100,)}),),
        )
        result = run_campaign(smaller, store, jobs=1)
        report = compare_runs(run_a, store.get_run(result.run_id))
        assert not report.passed
        assert report.missing_groups
        assert "MISSING" in report.render()


class TestSummaryAndPayload:
    def test_summarize_run_shape(self, tmp_path):
        _, run_a, _ = run_twice(tmp_path)
        summary = summarize_run(run_a)
        assert summary["run_id"] == run_a.run_id
        assert summary["cells_ok"] == 2
        assert summary["cells_failed"] == 0
        assert summary["groups"]
        for metrics in summary["groups"].values():
            for agg in metrics.values():
                assert {"mean", "stderr", "n"} <= set(agg)
        text = render_report(summary)
        assert run_a.run_id in text and "stderr" in text

    def test_bench_payload_includes_speedup(self, tmp_path):
        _, run_a, run_b = run_twice(tmp_path)
        summary_a, summary_b = summarize_run(run_a), summarize_run(run_b)
        payload = bench_payload(summary_b, summary_a)
        assert payload["run_id"] == run_b.run_id
        assert payload["baseline_run_id"] == run_a.run_id
        assert "speedup_vs_baseline" in payload
        assert payload["cells_per_sec"] is not None

    def test_bench_payload_without_baseline(self, tmp_path):
        _, run_a, _ = run_twice(tmp_path)
        payload = bench_payload(summarize_run(run_a))
        assert "speedup_vs_baseline" not in payload
        assert payload["groups"]


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        text = format_table("T", ["a", "bb"], [[1, 2.34567], ["x", 0.5]])
        assert "=== T ===" in text
        assert "2.346" in text  # 4 significant digits
        assert "x" in text
