"""Campaign runner: determinism, resume, retry, timeout, tracing."""

from __future__ import annotations

import time

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    run_campaign,
    resume_campaign,
    scenario,
)
from repro.errors import ReproError

_FLAKY_CALLS = {"n": 0}


@scenario("test-flaky", replace=True)
def flaky_scenario(params, seed):
    """Fails on its first attempt, succeeds on retry (inline tests only)."""
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] % 2 == 1:
        raise RuntimeError("transient failure")
    return {"value": float(seed % 97)}


@scenario("test-slow", replace=True)
def slow_scenario(params, seed):
    """Sleeps past any reasonable cell budget."""
    time.sleep(float(params.get("sleep", 5)))
    return {"value": 1.0}


@scenario("test-broken", replace=True)
def broken_scenario(params, seed):
    """Always fails."""
    raise ValueError("permanently broken")


_HEAL_STATE = {"broken": True}


@scenario("test-heal", replace=True)
def healing_scenario(params, seed):
    """Fails while _HEAL_STATE['broken'] is set, then recovers."""
    if _HEAL_STATE["broken"]:
        raise RuntimeError("still broken")
    return {"value": 1.0}


def comm_spec(name: str = "runner-test", replicates: int = 2) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        seed=3,
        replicates=replicates,
        scenarios=(
            ScenarioSpec("comm", {"nodes": (1_000, 10_000), "synopses": (100,)}),
            ScenarioSpec("fig8", {"count": (50,), "synopses": (20,), "trials": (10,)}),
        ),
    )


def metrics_by_cell(run):
    return {
        r["cell_id"]: (r["seed"], r["metrics"])
        for r in run.load_results()
        if r["status"] == "ok"
    }


class TestInlineExecution:
    def test_completes_all_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = comm_spec()
        result = run_campaign(spec, store, jobs=1)
        assert result.completed == len(spec.cells())
        assert result.failed == 0 and result.skipped == 0
        assert not result.interrupted
        assert result.cells_per_sec > 0
        run = store.get_run(result.run_id)
        assert run.read_manifest()["status"] == "complete"
        assert run.validate() == []

    def test_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(ReproError, match="jobs"):
            run_campaign(comm_spec(), ResultStore(tmp_path), jobs=0)

    def test_progress_messages_mention_resume_state(self, tmp_path):
        lines = []
        store = ResultStore(tmp_path)
        run_campaign(comm_spec(), store, jobs=1, progress=lines.append)
        assert any("cells" in line for line in lines)
        lines.clear()
        run_campaign(comm_spec(), store, jobs=1, progress=lines.append)
        assert any("resuming" in line for line in lines)


class TestResume:
    def test_second_run_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = comm_spec()
        first = run_campaign(spec, store, jobs=1)
        second = run_campaign(spec, store, jobs=1)
        assert second.skipped == first.completed
        assert second.completed == 0
        # No duplicate records were appended.
        run = store.get_run(first.run_id)
        assert len(run.load_results()) == len(spec.cells())

    def test_partial_store_resumes_only_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = comm_spec()
        full = run_campaign(spec, store, jobs=1)
        run = store.get_run(full.run_id)
        # Simulate an interrupt: keep only the first 2 records.
        lines = run.results_path.read_text().splitlines()[:2]
        run.results_path.write_text("\n".join(lines) + "\n")
        resumed = resume_campaign(run, store, jobs=1)
        assert resumed.skipped == 2
        assert resumed.completed == len(spec.cells()) - 2
        assert run.validate() == []

    def test_resumed_cells_reproduce_identical_numbers(self, tmp_path):
        """Re-running a subset must be bit-identical (stable seeds)."""
        store_a, store_b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        spec = comm_spec()
        full = run_campaign(spec, store_a, jobs=1)
        run_a = store_a.get_run(full.run_id)
        partial = run_campaign(spec, store_b, jobs=1)
        run_b = store_b.get_run(partial.run_id)
        assert metrics_by_cell(run_a) == metrics_by_cell(run_b)


class TestRobustness:
    def test_retry_once_recovers_flaky_cell(self, tmp_path):
        _FLAKY_CALLS["n"] = 0
        spec = CampaignSpec(
            name="flaky", scenarios=(ScenarioSpec("test-flaky", {}),)
        )
        store = ResultStore(tmp_path)
        result = run_campaign(spec, store, jobs=1)
        assert result.completed == 1 and result.failed == 0
        (record,) = store.get_run(result.run_id).load_results()
        assert record["status"] == "ok"
        assert record["attempts"] == 2

    def test_permanent_failure_is_recorded_not_raised(self, tmp_path):
        spec = CampaignSpec(
            name="broken", scenarios=(ScenarioSpec("test-broken", {}),)
        )
        store = ResultStore(tmp_path)
        result = run_campaign(spec, store, jobs=1)
        assert result.completed == 0 and result.failed == 1
        (record,) = store.get_run(result.run_id).load_results()
        assert record["status"] == "error"
        assert "permanently broken" in record["error"]
        assert record["attempts"] == 2  # retry-once was spent

    def test_cell_timeout_aborts_runaway_cell(self, tmp_path):
        spec = CampaignSpec(
            name="slow",
            cell_timeout=1.0,
            scenarios=(ScenarioSpec("test-slow", {"sleep": (30,)}),),
        )
        store = ResultStore(tmp_path)
        started = time.perf_counter()
        result = run_campaign(spec, store, jobs=1)
        elapsed = time.perf_counter() - started
        assert result.failed == 1
        (record,) = store.get_run(result.run_id).load_results()
        assert record["status"] == "timeout"
        assert "budget" in record["error"]
        assert elapsed < 10  # two 1s attempts, not 30s sleeps

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        _HEAL_STATE["broken"] = True
        spec = CampaignSpec(
            name="heal-resume", scenarios=(ScenarioSpec("test-heal", {}),)
        )
        store = ResultStore(tmp_path)
        first = run_campaign(spec, store, jobs=1)
        assert first.failed == 1 and first.completed == 0
        run = store.get_run(first.run_id)
        assert run.completed_cell_ids() == set()
        _HEAL_STATE["broken"] = False  # the flake clears up
        second = run_campaign(spec, store, jobs=1)
        assert second.completed == 1 and second.skipped == 0
        assert run.completed_cell_ids()


class TestParallelExecution:
    def test_jobs2_matches_inline_bit_for_bit(self, tmp_path):
        spec = comm_spec(name="par-test")
        store_inline = ResultStore(tmp_path / "inline")
        store_par = ResultStore(tmp_path / "par")
        inline = run_campaign(spec, store_inline, jobs=1)
        parallel = run_campaign(spec, store_par, jobs=2)
        assert parallel.completed == inline.completed == len(spec.cells())
        run_i = store_inline.get_run(inline.run_id)
        run_p = store_par.get_run(parallel.run_id)
        assert metrics_by_cell(run_i) == metrics_by_cell(run_p)
        assert run_p.validate() == []


class TestTraceCapture:
    def test_rounds_scenario_reports_trace_counts_under_runner(self, tmp_path):
        spec = CampaignSpec(
            name="traced",
            scenarios=(ScenarioSpec("rounds", {"nodes": (20,), "trace": (1,)}),),
        )
        store = ResultStore(tmp_path)
        result = run_campaign(spec, store, jobs=1)
        assert result.completed == 1
        (record,) = store.get_run(result.run_id).load_results()
        metrics = record["metrics"]
        assert metrics["trace_events"] > 0
        assert metrics["trace_transmissions"] > 0
        assert metrics["trace_broadcasts"] >= 3  # tree, query, confirm
        assert metrics["trace_events"] >= metrics["trace_transmissions"]


class TestWallClockFallback:
    """The no-SIGALRM `_alarm` path: post-hoc wall-clock classification."""

    def _strip_sigalrm(self, monkeypatch):
        from repro.campaign import runner

        monkeypatch.delattr(runner.signal, "SIGALRM")
        return runner

    def test_overrun_is_classified_after_the_fact(self, monkeypatch):
        runner = self._strip_sigalrm(monkeypatch)
        with pytest.raises(runner.CellTimeout):
            with runner._alarm(0.01):
                time.sleep(0.05)

    def test_within_budget_passes(self, monkeypatch):
        runner = self._strip_sigalrm(monkeypatch)
        with runner._alarm(30.0):
            pass

    def test_zero_budget_disables_the_alarm(self, monkeypatch):
        runner = self._strip_sigalrm(monkeypatch)
        with runner._alarm(0):
            time.sleep(0.01)  # would overrun any positive budget check

    def test_timed_out_cell_record_has_no_partial_metrics(self, monkeypatch):
        from repro.campaign import runner

        monkeypatch.delattr(runner.signal, "SIGALRM")
        record = runner.execute_cell(
            ("test-slow", (("sleep", 0.05),), "cell", 1, 0.01, ())
        )
        assert record["status"] == "timeout"
        assert record["metrics"] == {}  # the fallback ran the body; drop its output
        assert record["attempts"] == 1 + runner.RETRIES
