"""Campaign specs: JSON round-trip, hashing, seed derivation."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec, derive_cell_seed
from repro.errors import ConfigError


def two_scenario_spec() -> CampaignSpec:
    return CampaignSpec(
        name="demo",
        seed=7,
        replicates=2,
        scenarios=(
            ScenarioSpec("comm", {"nodes": (1_000, 10_000), "synopses": (100,)}),
            ScenarioSpec("fig8", {"count": (50,), "synopses": (50,), "trials": (10,)}),
        ),
    )


class TestScenarioSpec:
    def test_scalar_axis_is_promoted_to_tuple(self):
        spec = ScenarioSpec("comm", {"nodes": 500})
        assert spec.grid["nodes"] == (500,)

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("comm", {"nodes": ()})

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("comm", {"nodes": ([1, 2],)})

    def test_replicate_axis_is_reserved(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("comm", {"replicate": (0, 1)})


class TestCampaignSpec:
    def test_json_round_trip(self):
        spec = two_scenario_spec()
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_spec_hash_changes_with_content(self):
        spec = two_scenario_spec()
        other = CampaignSpec.from_dict({**spec.to_dict(), "seed": 8})
        assert other.spec_hash() != spec.spec_hash()

    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec(name="", scenarios=(ScenarioSpec("comm", {}),))
        with pytest.raises(ConfigError):
            CampaignSpec(name="x", scenarios=())
        with pytest.raises(ConfigError):
            CampaignSpec(name="x", scenarios=(ScenarioSpec("comm", {}),), replicates=0)

    def test_cells_expand_grid_times_replicates(self):
        cells = two_scenario_spec().cells()
        # comm: 2x1 grid, fig8: 1x1x1 grid, both x2 replicates.
        assert len(cells) == (2 * 1 + 1) * 2
        assert len({c.cell_id for c in cells}) == len(cells)
        replicates = {c.params_dict()["replicate"] for c in cells}
        assert replicates == {0, 1}


class TestSeedDerivation:
    def test_stable_across_calls(self):
        params = {"nodes": 100, "replicate": 0}
        assert derive_cell_seed(7, "comm", params) == derive_cell_seed(7, "comm", params)

    def test_sensitive_to_every_input(self):
        params = {"nodes": 100, "replicate": 0}
        base = derive_cell_seed(7, "comm", params)
        assert derive_cell_seed(8, "comm", params) != base
        assert derive_cell_seed(7, "fig8", params) != base
        assert derive_cell_seed(7, "comm", {**params, "nodes": 101}) != base
        assert derive_cell_seed(7, "comm", {**params, "replicate": 1}) != base

    def test_independent_of_param_insertion_order(self):
        a = derive_cell_seed(7, "comm", {"a": 1, "b": 2})
        b = derive_cell_seed(7, "comm", {"b": 2, "a": 1})
        assert a == b

    def test_subset_grid_reuses_full_grid_seeds(self):
        """Position-free seeding: narrowing the grid must not move seeds."""
        full = two_scenario_spec()
        subset = CampaignSpec(
            name="demo",
            seed=7,
            replicates=2,
            scenarios=(ScenarioSpec("comm", {"nodes": (10_000,), "synopses": (100,)}),),
        )
        full_seeds = {c.cell_id: c.seed for c in full.cells()}
        for cell in subset.cells():
            assert full_seeds[cell.cell_id] == cell.seed

    def test_seed_fits_in_63_bits(self):
        seed = derive_cell_seed(0, "comm", {"replicate": 0})
        assert 0 <= seed < 2**63
