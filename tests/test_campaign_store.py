"""Result store: manifests, append-only log, resume, validation."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, ResultStore, ScenarioSpec
from repro.errors import ReproError


def small_spec(name: str = "store-test", seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        seed=seed,
        replicates=2,
        scenarios=(ScenarioSpec("comm", {"nodes": (1_000,), "synopses": (100,)}),),
    )


def record_for(cell, status: str = "ok") -> dict:
    return {
        "cell_id": cell.cell_id,
        "scenario": cell.scenario,
        "params": cell.params_dict(),
        "seed": cell.seed,
        "status": status,
        "metrics": {"vmat_bytes": 2400.0} if status == "ok" else {},
        "error": None if status == "ok" else "boom",
        "attempts": 1,
        "wall_time_s": 0.01,
    }


class TestOpenRun:
    def test_create_writes_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        run, resumed = store.open_run(spec, jobs=3)
        assert not resumed
        manifest = run.read_manifest()
        assert manifest["run_id"] == store.run_id_for(spec)
        assert manifest["spec_hash"] == spec.spec_hash()
        assert manifest["status"] == "running"
        assert manifest["jobs"] == 3
        assert manifest["cells_total"] == 2
        assert "git_sha" in manifest and "created_at" in manifest

    def test_reopen_resumes(self, tmp_path):
        store = ResultStore(tmp_path)
        _, resumed1 = store.open_run(small_spec())
        _, resumed2 = store.open_run(small_spec())
        assert (resumed1, resumed2) == (False, True)

    def test_reopen_with_different_spec_same_id_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        run, _ = store.open_run(spec)
        # Corrupt the stored hash to simulate a colliding directory.
        run.update_manifest(spec_hash="deadbeef")
        with pytest.raises(ReproError, match="different spec hash"):
            store.open_run(spec)

    def test_manifest_spec_round_trips(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        assert run.spec() == spec


class TestResults:
    def test_append_and_load(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        cells = spec.cells()
        for cell in cells:
            run.append_result(record_for(cell))
        loaded = run.load_results()
        assert [r["cell_id"] for r in loaded] == [c.cell_id for c in cells]

    def test_completed_skips_failures(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        ok, failed = spec.cells()
        run.append_result(record_for(ok, status="ok"))
        run.append_result(record_for(failed, status="error"))
        assert run.completed_cell_ids() == {ok.cell_id}

    def test_append_rejects_malformed_record(self, tmp_path):
        run, _ = ResultStore(tmp_path).open_run(small_spec())
        with pytest.raises(ReproError, match="missing keys"):
            run.append_result({"cell_id": "x"})

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        run.append_result(record_for(spec.cells()[0]))
        with open(run.results_path, "a") as handle:
            handle.write('{"cell_id": "half-writ')  # crash mid-append
        assert len(run.load_results()) == 1
        assert any("unparseable" in p for p in run.validate())


class TestValidate:
    def test_clean_run_validates(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        for cell in spec.cells():
            run.append_result(record_for(cell))
        assert run.validate() == []

    def test_foreign_cell_flagged(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        rogue = record_for(spec.cells()[0])
        rogue["cell_id"] = "comm/nodes=77,replicate=0,synopses=100"
        run.append_result(rogue)
        assert any("not in the spec grid" in p for p in run.validate())

    def test_wrong_seed_flagged(self, tmp_path):
        spec = small_spec()
        run, _ = ResultStore(tmp_path).open_run(spec)
        rogue = record_for(spec.cells()[0])
        rogue["seed"] = 12345
        run.append_result(rogue)
        assert any("derived" in p for p in run.validate())

    def test_tampered_spec_hash_flagged(self, tmp_path):
        run, _ = ResultStore(tmp_path).open_run(small_spec())
        run.update_manifest(spec_hash="0" * 64)
        assert any("spec_hash" in p for p in run.validate())


class TestRootOperations:
    def test_get_run_unknown_id(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_run(small_spec())
        with pytest.raises(ReproError, match="unknown run"):
            store.get_run("nope")

    def test_latest_resolves_newest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_run(small_spec("first"))
        run_b, _ = store.open_run(small_spec("second"))
        # Same-second creation: "latest" must still resolve to *a* run.
        latest = store.get_run("latest")
        assert latest.run_id in {r.run_id for r in store.list_runs()}
        assert len(store.list_runs()) == 2
        assert run_b.run_id in {r.run_id for r in store.list_runs()}

    def test_latest_on_empty_store(self, tmp_path):
        with pytest.raises(ReproError, match="no runs"):
            ResultStore(tmp_path / "empty").get_run("latest")

    def test_manifest_is_valid_json_on_disk(self, tmp_path):
        run, _ = ResultStore(tmp_path).open_run(small_spec())
        raw = json.loads(run.manifest_path.read_text())
        assert raw["name"] == "store-test"
