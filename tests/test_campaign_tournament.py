"""The adversary-tournament harness (:mod:`repro.campaign.tournament`).

What the tournament promises on top of the generic campaign machinery:

* the ``tournament`` scenario is registered with full and reduced grids
  covering the whole zoo, and a cell is a pure function of
  ``(params, seed)``;
* honest-node-safety and revocation-progress are **in-cell oracles** —
  a violation raises, failing the cell, and (negative control) a cell
  patched to revoke an honest sensor actually fails;
* ``build_tournament_spec`` validates every axis value before any
  worker spawns;
* whole grids replay to bit-identical stores at any ``--jobs``;
* ``rank_run`` orders strategies by mean damage-per-latency and joins
  zoo metadata, and the CLI wraps run/report/compare end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import ZOO
from repro.campaign import (
    ResultStore,
    available_scenarios,
    build_tournament_spec,
    compare_runs,
    get_scenario,
    rank_run,
    render_ranking,
    run_campaign,
    summarize_run,
    tournament_bench_payload,
)
from repro.cli import main
from repro.errors import ConfigError, ReproError

CELL_PARAMS = {
    "strategy": "drop-minimum",
    "predtest": "truthful",
    "topology": "line-10",
    "profile": "none",
    "executions": 2,
}


def smoke_spec(name: str, strategies=("drop-minimum", "spurious-veto")):
    return build_tournament_spec(
        strategies=strategies,
        predtests=("truthful", "deny"),
        topologies=("line-10",),
        profiles=("none",),
        executions=2,
        name=name,
        seed=7,
    )


class TestScenario:
    def test_registered_and_grids_cover_the_zoo(self):
        assert "tournament" in available_scenarios()
        scenario = get_scenario("tournament")
        assert set(scenario.grid["strategy"]) == set(ZOO)
        assert scenario.reduced_grid  # CI smoke slice exists
        assert set(scenario.reduced_grid["strategy"]) <= set(ZOO)

    def test_cell_is_deterministic(self):
        scenario = get_scenario("tournament")
        a = scenario.run(dict(CELL_PARAMS), seed=11)
        b = scenario.run(dict(CELL_PARAMS), seed=11)
        assert a == b
        assert a["honest_revoked"] == 0.0
        assert a["invariant_violations"] == 0.0
        assert a["damage_per_latency"] == a["damage"] / max(
            a["detection_latency_intervals"], 1
        )

    def test_detected_cell_reports_latency_below_total(self):
        metrics = get_scenario("tournament").run(dict(CELL_PARAMS), seed=11)
        assert metrics["detected"] == 1.0
        assert metrics["revocations"] >= 1.0
        assert metrics["detection_latency_intervals"] <= metrics["total_intervals"]

    def test_unknown_strategy_fails_the_cell(self):
        with pytest.raises(ConfigError, match="unknown tournament strategy"):
            get_scenario("tournament").run(
                dict(CELL_PARAMS, strategy="zero-day"), seed=1
            )

    def test_honest_revocation_fails_the_cell(self, monkeypatch):
        # Negative control for the in-cell oracle: weaken veto-MAC
        # verification (the skip-veto-mac mutant's patch) so a forged
        # veto drags its claimed honest sensor into a walk it must
        # fail — the cell has to raise, not return metrics.
        from repro.core import confirmation

        monkeypatch.setattr(confirmation, "verify_mac", lambda *a, **k: True)
        with pytest.raises(ReproError, match="invariant violation|honest sensors"):
            get_scenario("tournament").run(
                dict(CELL_PARAMS, strategy="spurious-veto", predtest="deny"),
                seed=11,
            )


class TestSpecValidation:
    def test_default_spec_enters_the_full_zoo(self):
        spec = build_tournament_spec()
        grid = spec.scenarios[0].grid
        assert tuple(grid["strategy"]) == tuple(sorted(ZOO))
        assert grid["profile"] == ("none",)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"strategies": ("zero-day",)}, "unknown strategies"),
            ({"topologies": ("torus-9000",)}, "unknown tournament topology"),
            ({"profiles": ("solar-flare",)}, "unknown fault profiles"),
        ],
    )
    def test_bad_axis_values_rejected_before_spawn(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            build_tournament_spec(**kwargs)


class TestRunDeterminism:
    def test_parallel_and_inline_stores_identical(self, tmp_path):
        """The tournament-smoke CI gate, inline: two runs, zero tolerance."""
        store = ResultStore(tmp_path)
        parallel = run_campaign(smoke_spec("t-a"), store, jobs=2)
        inline = run_campaign(smoke_spec("t-b"), store, jobs=1)
        assert parallel.failed == 0 and inline.failed == 0
        report = compare_runs(
            store.get_run(parallel.run_id), store.get_run(inline.run_id), threshold=0.0
        )
        assert report.passed, report.regressions
        # Cell identity, not store order: record-for-record equality.
        key = lambda r: r["cell_id"]
        records_a = sorted(store.get_run(parallel.run_id).load_results(), key=key)
        records_b = sorted(store.get_run(inline.run_id).load_results(), key=key)
        for a, b in zip(records_a, records_b):
            assert a["seed"] == b["seed"]
            assert a["metrics"] == b["metrics"]


class TestRanking:
    def _run(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_campaign(
            smoke_spec("t-rank", strategies=("passive", "drop-minimum", "relay-drop")),
            store,
            jobs=1,
        )
        assert result.failed == 0
        return store.get_run(result.run_id)

    def test_rank_orders_by_score_and_joins_metadata(self, tmp_path):
        run = self._run(tmp_path)
        rows = rank_run(run)
        assert [r["strategy"] for r in rows][-1] != "relay-drop"  # silence profits
        scores = [r["score"] for r in rows]
        assert scores == sorted(scores, reverse=True)
        by_name = {r["strategy"]: r for r in rows}
        assert by_name["passive"]["score"] == 0.0
        assert by_name["passive"]["contract"] == "harmless"
        assert by_name["relay-drop"]["score"] > 0.0
        assert by_name["relay-drop"]["detected"] == 0.0
        for row in rows:
            assert row["family"] == ZOO[row["strategy"]].family
            assert row["capability"] == ZOO[row["strategy"]].capability
            assert row["cells"] == 2  # 2 predtests x 1 topology x 1 profile

    def test_render_and_bench_payload(self, tmp_path):
        run = self._run(tmp_path)
        rows = rank_run(run)
        rendered = render_ranking(rows)
        assert "tournament ranking" in rendered
        assert "relay-drop" in rendered
        payload = tournament_bench_payload(summarize_run(run), rows)
        assert payload["kind"] == "tournament"
        assert payload["cells_failed"] == 0
        assert payload["ranking"] == [dict(r) for r in rows]
        json.dumps(payload)  # must be JSON-serializable as committed

    def test_empty_ranking_renders_placeholder(self):
        assert render_ranking([]) == "no tournament records to rank"


class TestCli:
    def test_run_report_compare_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "campaign", "tournament", "run",
            "--strategy", "drop-minimum,spurious-veto",
            "--predtest", "truthful,deny",
            "--topology", "line-10",
            "--profile", "none",
            "--executions", "2",
            "--store", store,
            "--jobs", "1",
        ]
        assert main(args + ["--name", "cli-a"]) == 0
        assert main(args + ["--name", "cli-b"]) == 0
        capsys.readouterr()

        output = tmp_path / "bench.json"
        assert main([
            "campaign", "tournament", "report", "latest",
            "--store", store, "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "tournament ranking" in out
        payload = json.loads(output.read_text())
        assert payload["kind"] == "tournament"
        assert payload["cells_ok"] == 4  # 2 strategies x 2 predtests x 1 topology

        runs = ResultStore(store).list_runs()
        run_ids = [r.run_id for r in runs]
        assert main([
            "campaign", "tournament", "compare", run_ids[0], run_ids[1],
            "--store", store, "--threshold", "0",
        ]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
