"""CLI subcommands (small parameters so the suite stays fast)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.synopses == 100
        assert args.trials == 200

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--attack", "teleport"])


class TestSubcommands:
    def test_fig7(self, capsys):
        code = main([
            "fig7", "--sizes", "500", "--malicious", "1", "3",
            "--trials", "5", "--theta-max", "12",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 7" in out
        assert "smallest theta" in out

    def test_fig8(self, capsys):
        code = main(["fig8", "--counts", "50", "500", "--trials", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 8" in out
        assert "p99" in out

    def test_comm(self, capsys):
        code = main(["comm"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2400" in out

    def test_rounds(self, capsys):
        code = main(["rounds", "--sizes", "40", "80"])
        out = capsys.readouterr().out
        assert code == 0
        assert "set-sampling" in out

    def test_connectivity(self, capsys):
        code = main(["connectivity", "--nodes", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "connected share" in out

    @pytest.mark.parametrize("attack", ["drop", "junk", "hide", "spurious-veto"])
    def test_demo_attacks(self, capsys, attack):
        code = main([
            "demo", "--attack", attack, "--nodes", "25",
            "--compromised", "4", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "revoked sensors" in out

    def test_report_to_stdout(self, capsys):
        code = main(["report", "--trials", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# VMAT reproduction report" in out
        assert "Figure 7" in out and "Figure 8" in out
        assert "alarm-only: stalled" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["report", "--trials", "4", "--output", str(target)])
        assert code == 0
        assert target.exists()
        assert "Figure 8" in target.read_text()

    def test_fig7_plot_flag(self, capsys):
        code = main([
            "fig7", "--sizes", "500", "--malicious", "1",
            "--trials", "4", "--theta-max", "10", "--plot",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mis-revoked" in out
