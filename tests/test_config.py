"""Config validation: every config that constructs is consistent."""

from __future__ import annotations

import math

import pytest

from repro.config import (
    ClockConfig,
    ExperimentConfig,
    KeyConfig,
    NetworkConfig,
    ProtocolConfig,
    RevocationConfig,
    small_test_config,
)
from repro.errors import ConfigError


class TestClockConfig:
    def test_defaults_valid(self):
        clock = ClockConfig()
        assert clock.interval_length > 2 * clock.max_error

    def test_rejects_interval_shorter_than_guard_bands(self):
        with pytest.raises(ConfigError):
            ClockConfig(interval_length=0.1, max_error=0.06)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigError):
            ClockConfig(interval_length=0.0)

    def test_rejects_negative_error(self):
        with pytest.raises(ConfigError):
            ClockConfig(max_error=-0.1)

    def test_guard_band_equals_max_error(self):
        assert ClockConfig(max_error=0.02).guard_band == 0.02


class TestKeyConfig:
    def test_paper_defaults(self):
        keys = KeyConfig()
        assert keys.pool_size == 100_000
        assert keys.ring_size == 250
        assert keys.mac_length == 8

    def test_paper_edge_key_probability_about_half(self):
        # Section IX: "any two sensors can find at least one common edge
        # key with probability around 0.5".
        p = KeyConfig().edge_key_probability()
        assert 0.4 < p < 0.55

    def test_edge_key_probability_monotone_in_ring_size(self):
        p_small = KeyConfig(pool_size=1000, ring_size=10).edge_key_probability()
        p_large = KeyConfig(pool_size=1000, ring_size=50).edge_key_probability()
        assert p_large > p_small

    def test_full_pool_ring_guarantees_edge_key(self):
        p = KeyConfig(pool_size=100, ring_size=100).edge_key_probability()
        assert p == pytest.approx(1.0)

    def test_rejects_ring_larger_than_pool(self):
        with pytest.raises(ConfigError):
            KeyConfig(pool_size=10, ring_size=11)

    def test_rejects_bad_mac_length(self):
        with pytest.raises(ConfigError):
            KeyConfig(mac_length=2)


class TestRevocationConfig:
    def test_default_theta_is_paper_value(self):
        assert RevocationConfig().theta == 27

    def test_rejects_zero_theta(self):
        with pytest.raises(ConfigError):
            RevocationConfig(theta=0)


class TestProtocolConfig:
    def test_defaults(self):
        protocol = ProtocolConfig()
        assert protocol.num_synopses == 100
        assert protocol.domain_size == 10_001

    def test_rejects_inverted_domain(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(reading_min=5, reading_max=4)

    def test_rejects_zero_depth(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(depth_bound=0)


class TestNetworkConfig:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            NetworkConfig(forwarding_capacity=0)


class TestExperimentConfig:
    def test_with_depth_bound_returns_new_config(self):
        config = ExperimentConfig()
        deeper = config.with_depth_bound(25)
        assert deeper.protocol.depth_bound == 25
        assert config.protocol.depth_bound == 10  # original untouched

    def test_small_test_config_shrinks_pool(self):
        config = small_test_config()
        assert config.keys.pool_size < KeyConfig().pool_size
        # and raises pairwise shared-key probability to near certainty
        assert config.keys.edge_key_probability() > 0.99

    def test_configs_are_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(Exception):
            config.protocol = ProtocolConfig()  # type: ignore[misc]
