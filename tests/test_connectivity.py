"""Connectivity-under-revocation analysis (§IX closing remark)."""

from __future__ import annotations

import pytest

from repro.analysis import link_survival_probability, revocation_sweep
from repro.config import ExperimentConfig, KeyConfig, ProtocolConfig
from repro.errors import ConfigError


class TestLinkSurvival:
    def test_no_revocation_full_survival(self):
        assert link_survival_probability(KeyConfig(), 0.0) == pytest.approx(1.0)

    def test_full_revocation_zero_survival(self):
        assert link_survival_probability(KeyConfig(), 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_fraction(self):
        values = [
            link_survival_probability(KeyConfig(), phi)
            for phi in (0.0, 0.25, 0.5, 0.75, 0.99)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_denser_rings_survive_better(self):
        sparse = KeyConfig(pool_size=10_000, ring_size=50)
        dense = KeyConfig(pool_size=10_000, ring_size=400)
        assert link_survival_probability(dense, 0.5) > link_survival_probability(
            sparse, 0.5
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            link_survival_probability(KeyConfig(), 1.5)


class TestRevocationSweep:
    def test_sweep_shape(self):
        config = ExperimentConfig(
            keys=KeyConfig(pool_size=500, ring_size=50),
            protocol=ProtocolConfig(depth_bound=10),
        )
        series = revocation_sweep(40, [0.0, 0.5, 0.95], config=config, trials=2, seed=2)
        assert series.connected_share[0.0] == 1.0
        assert series.connected_share[0.95] <= series.connected_share[0.0]

    def test_collapse_fraction_none_when_robust(self):
        series = revocation_sweep(30, [0.0, 0.1], trials=1, seed=3)
        assert series.collapse_fraction(threshold=0.5) is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            revocation_sweep(30, [1.0], trials=1)
        with pytest.raises(ConfigError):
            revocation_sweep(30, [0.5], trials=0)
