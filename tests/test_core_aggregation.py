"""Aggregation phase (Section IV-B): minima, audit tuples, junk detection."""

from __future__ import annotations

import pytest

from repro import build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy, JunkMinimumStrategy
from repro.core.aggregation import run_aggregation
from repro.core.tree import form_tree
from repro.crypto.mac import compute_mac
from repro.net.message import ReadingMessage
from repro.topology import line_topology

NONCE = b"agg-test-nonce"


def sign_all(deployment, readings, nonce=NONCE):
    messages = {}
    for node_id, node in deployment.network.nodes.items():
        node.begin_execution(reading=readings[node_id])
        node.query_values = [node.reading]
        key = deployment.registry.sensor_key(node_id)
        messages[node_id] = [
            ReadingMessage(
                sensor_id=node_id,
                value=node.reading,
                mac=compute_mac(key, node_id, 0, node.reading, nonce),
            )
        ]
    return messages


def run(deployment, adversary, readings, depth_bound, verify=lambda i, m: True):
    own = sign_all(deployment, readings)
    if adversary is not None:
        mal = deployment.network.malicious_ids
        mal_readings = {i: readings[i] for i in mal}
        mal_msgs = {
            i: [
                ReadingMessage(
                    sensor_id=i,
                    value=readings[i],
                    mac=compute_mac(
                        deployment.registry.sensor_key(i), i, 0, readings[i], NONCE
                    ),
                )
            ]
            for i in mal
        }
        adversary.begin_execution(mal_readings, {i: [readings[i]] for i in mal}, mal_msgs)
    form_tree(deployment.network, adversary, depth_bound)
    return run_aggregation(
        deployment.network, adversary, depth_bound, NONCE, own, 1, verify
    )


class TestHonestAggregation:
    def test_minimum_reaches_base_station(self, line_deployment):
        readings = {i: 100.0 + i for i in line_deployment.topology.sensor_ids}
        readings[9] = 3.0
        result = run(line_deployment, None, readings, 12)
        assert result.minimum_values() == [3.0]
        assert result.junk is None

    def test_minimum_message_carries_true_origin(self, deployment):
        readings = {i: 50.0 + i for i in deployment.topology.sensor_ids}
        readings[17] = 2.0
        result = run(deployment, None, readings, deployment.config.protocol.depth_bound)
        assert result.minima[0].sensor_id == 17
        assert result.carrying_delivery[0] is not None

    def test_audit_records_on_path(self, line_deployment):
        readings = {i: 100.0 + i for i in line_deployment.topology.sensor_ids}
        readings[9] = 3.0
        run(line_deployment, None, readings, 12)
        # Every intermediate node forwarded the 3.0 value at its level.
        for node_id in range(1, 9):
            node = line_deployment.network.nodes[node_id]
            assert any(
                record.message.value == 3.0 for record in node.audit.agg_sends
            ), f"node {node_id} missing forward record"
            assert any(
                record.message.value == 3.0 for record in node.audit.agg_receipts
            ), f"node {node_id} missing receipt record"

    def test_receipt_intervals_match_level_arithmetic(self, line_deployment):
        L = 12
        readings = {i: 100.0 + i for i in line_deployment.topology.sensor_ids}
        run(line_deployment, None, readings, L)
        for node_id, node in line_deployment.network.nodes.items():
            for receipt in node.audit.agg_receipts:
                assert receipt.interval == L - node.level

    def test_ties_resolve_deterministically(self, line_deployment):
        readings = {i: 5.0 for i in line_deployment.topology.sensor_ids}
        result = run(line_deployment, None, readings, 12)
        # lowest sensor id wins the tie by the message total order
        assert result.minima[0].sensor_id == 1


class TestAttackedAggregation:
    def test_dropper_suppresses_minimum(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=4,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(), seed=4)
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        result = run(dep, adv, readings, 12)
        # The dropper forwarded its own reading instead of 1.0.
        assert result.minimum_values()[0] > 1.0
        assert result.junk is None  # dropping is silent, not spurious

    def test_junk_detected_by_verifier(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=4,
        )
        adv = Adversary(dep.network, JunkMinimumStrategy(junk_value=-5.0), seed=4)
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}

        def verify(instance, message):
            key = dep.registry.sensor_key(message.sensor_id)
            from repro.crypto.mac import verify_mac

            return verify_mac(key, message.mac, message.sensor_id, message.instance,
                              message.value, NONCE)

        result = run(dep, adv, readings, 12, verify=verify)
        assert result.junk is not None
        instance, message, delivery = result.junk
        assert message.value == -5.0
        # Honest ancestors forwarded the junk — the carrying delivery at
        # the BS came from the innocent node 1.
        assert delivery.sender == 1

    def test_missing_own_messages_is_a_protocol_error(self, line_deployment):
        from repro.errors import ProtocolError

        readings = {i: 1.0 for i in line_deployment.topology.sensor_ids}
        sign_all(line_deployment, readings)
        form_tree(line_deployment.network, None, 12)
        with pytest.raises(ProtocolError):
            run_aggregation(
                line_deployment.network, None, 12, NONCE, {}, 1, lambda i, m: True
            )


class TestEmptyNetworkEdgeCases:
    def test_no_arrivals_yields_none_minimum(self):
        # Malicious node adjacent to the BS swallows everything.
        dep = build_deployment(
            config=small_test_config(depth_bound=6),
            topology=line_topology(4),
            malicious_ids={1},
            seed=4,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(), seed=4)
        readings = {i: 10.0 for i in dep.topology.sensor_ids}
        result = run(dep, adv, readings, 6)
        # The dropper still forwards its OWN reading, so the BS hears it:
        assert result.minimum_values() == [10.0]
