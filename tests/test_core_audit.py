"""Well-formed audit trails (Section V): validators + Theorem 2 via
omniscient reconstruction."""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy
from repro.core.audit import (
    AuditTuple,
    merge_bottom_segments,
    reconstruct_veto_trail,
    validate_junk_trail,
    validate_veto_trail,
)
from repro.core.confirmation import run_confirmation
from repro.errors import AuditTrailError
from repro.topology import grid_topology, line_topology


def normal(position, value, owner, in_edge, out_edge):
    return AuditTuple(position, value, owner, in_edge, out_edge)


def bottom(position, value, in_edge, out_edge=None):
    return AuditTuple(position, value, None, in_edge, out_edge)


class TestVetoTrailValidator:
    def test_figure3_shaped_trail_accepted(self):
        # Mirrors the paper's Figure 3: levels 8,7,4,3,2 with two
        # malicious segments.
        trail = [
            normal(8, 5.0, 11, None, 100),
            normal(7, 5.0, 12, 100, 101),
            bottom(4, 4.0, 101, 102),
            normal(3, 4.0, 13, 102, 103),
            bottom(2, 4.0, 103),
        ]
        validate_veto_trail(trail, depth_bound=10)

    def test_empty_trail_rejected(self):
        with pytest.raises(AuditTrailError):
            validate_veto_trail([], 10)

    def test_trail_must_end_bottom(self):
        trail = [normal(3, 1.0, 5, None, 1)]
        with pytest.raises(AuditTrailError, match="end with"):
            validate_veto_trail(trail, 10)

    def test_adjacent_bottoms_rejected(self):
        trail = [normal(5, 1.0, 3, None, 1), bottom(4, 1.0, 1, 2), bottom(3, 1.0, 2)]
        with pytest.raises(AuditTrailError, match="adjacent"):
            validate_veto_trail(trail, 10)

    def test_levels_must_step_down_by_one(self):
        trail = [normal(5, 1.0, 3, None, 1), normal(3, 1.0, 4, 1, 2), bottom(2, 1.0, 2)]
        with pytest.raises(AuditTrailError, match="predecessor"):
            validate_veto_trail(trail, 10)

    def test_bottom_may_skip_levels(self):
        trail = [normal(9, 1.0, 3, None, 1), bottom(2, 1.0, 1)]
        validate_veto_trail(trail, 10)

    def test_value_may_not_increase(self):
        trail = [normal(5, 1.0, 3, None, 1), normal(4, 2.0, 4, 1, 2), bottom(3, 2.0, 2)]
        with pytest.raises(AuditTrailError, match="value"):
            validate_veto_trail(trail, 10)

    def test_edge_keys_must_chain(self):
        trail = [normal(5, 1.0, 3, None, 1), bottom(4, 1.0, 99)]
        with pytest.raises(AuditTrailError, match="edge-key"):
            validate_veto_trail(trail, 10)

    def test_level_range_enforced(self):
        trail = [normal(15, 1.0, 3, None, 1), bottom(4, 1.0, 1)]
        with pytest.raises(AuditTrailError, match="outside"):
            validate_veto_trail(trail, 10)


class TestJunkTrailValidator:
    def test_ascending_aggregation_trail(self):
        trail = [
            normal(1, 7.0, 4, None, 9),
            normal(2, 7.0, 5, 9, 10),
            bottom(3, 7.0, 10),
        ]
        validate_junk_trail(trail, 10, ascending_levels=True)

    def test_descending_confirmation_trail(self):
        trail = [
            normal(6, 7.0, 4, None, 9),
            normal(5, 7.0, 5, 9, 10),
            bottom(3, 7.0, 10),
        ]
        validate_junk_trail(trail, 10, ascending_levels=False)

    def test_message_must_be_identical(self):
        trail = [normal(1, 7.0, 4, None, 9), bottom(2, 6.0, 9)]
        with pytest.raises(AuditTrailError, match="identical"):
            validate_junk_trail(trail, 10, ascending_levels=True)

    def test_monotonicity_enforced(self):
        trail = [normal(3, 7.0, 4, None, 9), normal(3, 7.0, 5, 9, 10), bottom(1, 7.0, 10)]
        with pytest.raises(AuditTrailError, match="monotonicity"):
            validate_junk_trail(trail, 10, ascending_levels=True)


class TestMergeBottoms:
    def test_merges_contiguous_segments(self):
        trail = [
            normal(5, 1.0, 3, None, 1),
            bottom(4, 1.0, 1, 2),
            bottom(3, 1.0, 2, 3),
            normal(2, 1.0, 4, 3, 5),
            bottom(1, 1.0, 5),
        ]
        merged = merge_bottom_segments(trail)
        assert len(merged) == 4
        assert merged[1].in_edge_index == 1 and merged[1].out_edge_index == 3


class TestTheorem2Reconstruction:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_dropping_attack_leaves_well_formed_trail(self, seed):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(9),
            malicious_ids={4},
            seed=seed,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=seed)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        readings[8] = 1.0

        # Run up to the confirmation, capture the veto, then reconstruct.
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT

        # Re-run the same scenario on a fresh deployment and intercept
        # before pinpointing to get the trail (pinpointing itself does
        # not consume the audit stores, so reconstruct directly):
        veto_sensor = 8
        from repro.net.message import VetoMessage

        node = dep.network.nodes[veto_sensor]
        veto = VetoMessage(
            sensor_id=veto_sensor,
            value=1.0,
            level=node.level if node.level else 8,
            mac=b"x" * 8,
        )
        trail = reconstruct_veto_trail(dep.network, adv, veto, 12)
        merged = merge_bottom_segments(trail)
        validate_veto_trail(merged, 12, network=dep.network)
        assert merged[-1].is_bottom

    def test_grid_drop_trail(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={11, 14},
            seed=6,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=6)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        from repro.net.message import VetoMessage

        node = dep.network.nodes[15]
        veto = VetoMessage(sensor_id=15, value=1.0, level=node.level, mac=b"x" * 8)
        trail = merge_bottom_segments(reconstruct_veto_trail(dep.network, adv, veto, 10))
        validate_veto_trail(trail, 10, network=dep.network)


class TestJunkTrailReconstruction:
    def _spurious_scenario(self, seed):
        from repro.adversary import Adversary, SpuriousVetoStrategy
        from repro.core.audit import reconstruct_junk_conf_trail, validate_junk_trail

        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5},
            seed=seed,
        )
        adv = Adversary(dep.network, SpuriousVetoStrategy(), seed=seed)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        return dep, adv, protocol, readings

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_spurious_veto_leaves_well_formed_junk_trail(self, seed):
        from repro.core.audit import (
            merge_bottom_segments,
            reconstruct_junk_conf_trail,
            validate_junk_trail,
        )
        from repro.core.confirmation import run_confirmation
        from repro.core.tree import form_tree
        from repro.core.aggregation import run_aggregation
        from repro.crypto.mac import compute_mac
        from repro.net.message import ReadingMessage

        dep, adv, protocol, readings = self._spurious_scenario(seed)
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.JUNK_CONFIRMATION_PINPOINT

        # Rebuild the scenario to capture the spurious delivery directly.
        dep, adv, protocol, readings = self._spurious_scenario(seed)
        nonce = protocol.nonces.next()
        dep.network.authenticated_flood("query", "min", 1, nonce)
        own = {}
        for node_id, node in dep.network.nodes.items():
            node.begin_execution(reading=readings[node_id])
            node.query_values = [node.reading]
            key = dep.registry.sensor_key(node_id)
            own[node_id] = [
                ReadingMessage(
                    sensor_id=node_id, value=node.reading,
                    mac=compute_mac(key, node_id, 0, node.reading, nonce),
                )
            ]
        mal = dep.network.malicious_ids
        adv.begin_execution(
            {i: readings[i] for i in mal},
            {i: [readings[i]] for i in mal},
            {i: [] for i in mal},
        )
        form_tree(dep.network, adv, 10)
        agg = run_aggregation(dep.network, adv, 10, nonce, own, 1, lambda i, m: True)
        conf = run_confirmation(dep.network, adv, 10, nonce, agg.minimum_values())
        assert conf.spurious_veto is not None
        veto, delivery, interval = conf.spurious_veto

        trail = reconstruct_junk_conf_trail(
            dep.network, adv, veto, delivery.key_index, interval, 10
        )
        merged = merge_bottom_segments(trail)
        validate_junk_trail(merged, 10, ascending_levels=False, network=dep.network)
        assert merged[-1].is_bottom


class TestJunkAggTrailReconstruction:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_junk_minimum_leaves_ascending_trail(self, seed):
        from repro.adversary import Adversary, JunkMinimumStrategy
        from repro.core.audit import (
            merge_bottom_segments,
            reconstruct_junk_agg_trail,
            validate_junk_trail,
        )
        from repro.core.aggregation import run_aggregation
        from repro.core.tree import form_tree
        from repro.crypto.mac import compute_mac
        from repro.net.message import ReadingMessage

        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=seed,
        )
        adv = Adversary(dep.network, JunkMinimumStrategy(), seed=seed)
        protocol = VMATProtocol(dep.network, adversary=adv)
        nonce = protocol.nonces.next()
        dep.network.authenticated_flood("query", "min", 1, nonce)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        own = {}
        for node_id, node in dep.network.nodes.items():
            node.begin_execution(reading=readings[node_id])
            node.query_values = [node.reading]
            key = dep.registry.sensor_key(node_id)
            own[node_id] = [
                ReadingMessage(
                    sensor_id=node_id, value=node.reading,
                    mac=compute_mac(key, node_id, 0, node.reading, nonce),
                )
            ]
        mal = dep.network.malicious_ids
        adv.begin_execution(
            {i: readings[i] for i in mal},
            {i: [readings[i]] for i in mal},
            {i: [adv.sign_reading(i, readings[i], nonce)] for i in mal},
        )
        form_tree(dep.network, adv, 12)

        from repro.crypto.mac import verify_mac

        def verify(instance, message):
            return verify_mac(
                dep.registry.sensor_key(message.sensor_id), message.mac,
                message.sensor_id, message.instance, message.value, nonce,
            )

        agg = run_aggregation(dep.network, adv, 12, nonce, own, 1, verify)
        assert agg.junk is not None
        instance, junk_message, delivery = agg.junk

        trail = reconstruct_junk_agg_trail(
            dep.network, adv, junk_message, delivery.key_index, 12
        )
        merged = merge_bottom_segments(trail)
        validate_junk_trail(merged, 12, ascending_levels=True, network=dep.network)
        assert merged[-1].is_bottom
        # Honest forwarders between the base station and the injector
        # appear as normal tuples at levels 1, 2 (nodes 1 and 2 on the line).
        honest_owners = [t.owner for t in merged if not t.is_bottom]
        assert honest_owners == [1, 2]
