"""Confirmation phase + SOF (Section IV-C), including Lemma 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_deployment, small_test_config
from repro.adversary import Adversary, SpuriousVetoStrategy
from repro.core.confirmation import run_confirmation
from repro.core.tree import form_tree
from repro.topology import grid_topology, line_topology

NONCE = b"conf-test-nonce"


def prepare(deployment, readings, adversary=None, depth_bound=12):
    for node_id, node in deployment.network.nodes.items():
        node.begin_execution(reading=readings[node_id])
        node.query_values = [node.reading]
        # Confirmation requires an aggregation send record to exist for
        # honest vetoers in the end-to-end flow; here we test SOF alone,
        # so levels from tree formation suffice.
    if adversary is not None:
        mal = deployment.network.malicious_ids
        adversary.begin_execution(
            {i: readings[i] for i in mal}, {i: [readings[i]] for i in mal}, {i: [] for i in mal}
        )
    form_tree(deployment.network, adversary, depth_bound)


class TestSilentConfirmation:
    def test_no_veto_when_broadcast_is_true_minimum(self, line_deployment):
        readings = {i: 10.0 + i for i in line_deployment.topology.sensor_ids}
        prepare(line_deployment, readings)
        result = run_confirmation(line_deployment.network, None, 12, NONCE, [11.0])
        assert result.silent

    def test_equal_reading_does_not_veto(self, line_deployment):
        # Vetoing requires strictly smaller (the minimum itself must not
        # veto its own broadcast).
        readings = {i: 5.0 for i in line_deployment.topology.sensor_ids}
        prepare(line_deployment, readings)
        result = run_confirmation(line_deployment.network, None, 12, NONCE, [5.0])
        assert result.silent


class TestVetoDelivery:
    def test_single_vetoer_reaches_base_station(self, line_deployment):
        readings = {i: 10.0 + i for i in line_deployment.topology.sensor_ids}
        readings[9] = 1.0
        prepare(line_deployment, readings)
        result = run_confirmation(line_deployment.network, None, 12, NONCE, [11.0])
        assert result.valid_veto is not None
        veto, delivery, interval = result.valid_veto
        assert veto.sensor_id == 9
        assert veto.value == 1.0
        # The vetoer sits at depth 9: its veto needs 9 intervals.
        assert interval == 9

    def test_audit_trail_length_bounded(self, line_deployment):
        L = 12
        readings = {i: 10.0 + i for i in line_deployment.topology.sensor_ids}
        readings[9] = 1.0
        prepare(line_deployment, readings)
        run_confirmation(line_deployment.network, None, L, NONCE, [11.0])
        # SOF: each forwarder records interval = predecessor + 1 <= L.
        for node in line_deployment.network.nodes.values():
            for record in node.audit.conf_sends:
                assert 1 <= record.interval <= L
            for record in node.audit.conf_receipts:
                assert 1 <= record.interval <= L - 1

    def test_one_time_forwarding(self, grid_deployment):
        readings = {i: 10.0 for i in grid_deployment.topology.sensor_ids}
        # multiple vetoers
        for vetoer in (12, 18, 24):
            readings[vetoer] = 1.0
        prepare(grid_deployment, readings, depth_bound=10)
        run_confirmation(grid_deployment.network, None, 10, NONCE, [5.0])
        for node in grid_deployment.network.nodes.values():
            distinct_intervals = {r.interval for r in node.audit.conf_sends}
            # a node transmits its veto payload in exactly one interval
            assert len(distinct_intervals) <= 1

    def test_multiple_vetoers_one_suffices(self, grid_deployment):
        readings = {i: 10.0 for i in grid_deployment.topology.sensor_ids}
        for vetoer in (6, 12, 18):
            readings[vetoer] = 1.0
        prepare(grid_deployment, readings, depth_bound=10)
        result = run_confirmation(grid_deployment.network, None, 10, NONCE, [5.0])
        assert result.valid_veto is not None


class TestSpuriousVetoes:
    def test_spurious_veto_classified(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5},
            seed=8,
        )
        adv = Adversary(dep.network, SpuriousVetoStrategy(), seed=8)
        readings = {i: 10.0 for i in dep.topology.sensor_ids}
        prepare(dep, readings, adversary=adv, depth_bound=10)
        result = run_confirmation(dep.network, adv, 10, NONCE, [5.0])
        assert result.spurious_veto is not None
        assert result.valid_veto is None  # nobody honest had reason to veto

    def test_lemma1_spurious_cannot_silence_sof(self):
        """Lemma 1: an honest vetoer guarantees the base station receives
        SOME veto, even under spurious-veto injection."""
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5, 10},
            seed=8,
        )
        adv = Adversary(dep.network, SpuriousVetoStrategy(), seed=8)
        readings = {i: 10.0 for i in dep.topology.sensor_ids}
        readings[15] = 1.0  # honest vetoer in the far corner
        prepare(dep, readings, adversary=adv, depth_bound=10)
        result = run_confirmation(dep.network, adv, 10, NONCE, [5.0])
        assert not result.silent  # Lemma 1

    @settings(max_examples=10, deadline=None)
    @given(vetoer=st.integers(1, 24), seed=st.integers(0, 5))
    def test_lemma1_property_over_vetoer_placement(self, vetoer, seed):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(5, 5),
            seed=seed,
        )
        readings = {i: 10.0 for i in dep.topology.sensor_ids}
        readings[vetoer] = 1.0
        prepare(dep, readings, depth_bound=10)
        result = run_confirmation(dep.network, None, 10, NONCE, [5.0])
        assert result.valid_veto is not None
