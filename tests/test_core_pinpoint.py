"""Pinpointing/revocation (Section VI): Lemmas 4-5, Theorem 6.

The central safety invariant, asserted everywhere: **no honest sensor is
ever revoked, and every revoked key is held by some malicious sensor** —
no matter how the adversary answers predicate tests.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import (
    Adversary,
    DropMinimumStrategy,
    HideAndVetoStrategy,
    JunkMinimumStrategy,
    PolicyStrategy,
    SpuriousVetoStrategy,
)
from repro.errors import ProtocolError
from repro.topology import grid_topology, line_topology

from tests.conftest import assert_only_malicious_revoked


def attacked(strategy, malicious, topology=None, depth_bound=12, seed=7, theta=None):
    from dataclasses import replace

    from repro.config import RevocationConfig

    config = small_test_config(depth_bound=depth_bound)
    if theta is not None:
        config = replace(config, revocation=RevocationConfig(theta=theta))
    dep = build_deployment(
        config=config,
        topology=topology if topology is not None else line_topology(10),
        malicious_ids=malicious,
        seed=seed,
    )
    adv = Adversary(dep.network, strategy, seed=seed)
    return dep, adv, VMATProtocol(dep.network, adversary=adv)


def line_readings(dep, minimum_at):
    readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
    readings[minimum_at] = 1.0
    return readings


class TestVetoTriggered:
    @pytest.mark.parametrize("policy", ["truthful", "deny", "lie_yes", "coin"])
    def test_drop_attack_always_costs_the_adversary(self, policy):
        dep, adv, proto = attacked(DropMinimumStrategy(predtest=policy), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 9))
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert result.revocations, "Theorem 6: at least one revocation"
        assert_only_malicious_revoked(dep, {4})

    def test_truthful_dropper_loses_entire_ring(self):
        dep, adv, proto = attacked(DropMinimumStrategy(predtest="truthful"), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 9))
        assert result.pinpoint.blamed_sensor == 4
        assert 4 in dep.registry.revoked_sensors

    def test_denying_dropper_loses_one_edge_key(self):
        dep, adv, proto = attacked(DropMinimumStrategy(predtest="deny"), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 9))
        assert result.pinpoint.blamed_key is not None
        assert result.pinpoint.blamed_sensor is None
        assert len(result.pinpoint.revoked_key_indices) == 1

    def test_hide_and_veto_pinpointed(self):
        dep, adv, proto = attacked(HideAndVetoStrategy(), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 4))
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert result.revocations
        assert_only_malicious_revoked(dep, {4})

    def test_walk_length_bounded_by_depth(self):
        dep, adv, proto = attacked(DropMinimumStrategy(predtest="deny"), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 9))
        assert result.pinpoint.steps <= 12 + 1

    def test_theorem6_test_count_is_logarithmic(self):
        """O(L log n) predicate tests per pinpoint run (Theorem 6)."""
        dep, adv, proto = attacked(DropMinimumStrategy(predtest="deny"), {4})
        result = proto.execute(MinQuery(), line_readings(dep, 9))
        import math

        r = dep.config.keys.ring_size
        L = 12
        bound = (result.pinpoint.steps) * (2 * math.ceil(math.log2(r)) + 8) + 8
        assert result.pinpoint.tests_run <= bound


class TestJunkTriggered:
    def test_junk_minimum_traced_through_honest_forwarders(self):
        dep, adv, proto = attacked(JunkMinimumStrategy(), {4})
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        result = proto.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.JUNK_AGGREGATION_PINPOINT
        assert result.revocations
        assert_only_malicious_revoked(dep, {4})

    def test_junk_minimum_lie_yes_policy(self):
        dep, adv, proto = attacked(JunkMinimumStrategy(predtest="lie_yes"), {4})
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        result = proto.execute(MinQuery(), readings)
        assert result.revocations
        assert_only_malicious_revoked(dep, {4})

    def test_spurious_veto_traced(self):
        dep, adv, proto = attacked(
            SpuriousVetoStrategy(), {5}, topology=grid_topology(4, 4), depth_bound=10
        )
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0  # honest vetoer exists; junk races it
        result = proto.execute(MinQuery(), readings)
        assert result.outcome in (
            ExecutionOutcome.JUNK_CONFIRMATION_PINPOINT,
            ExecutionOutcome.VETO_PINPOINT,  # legit veto may still win the race
        )
        assert result.revocations
        assert_only_malicious_revoked(dep, {5})

    def test_junk_near_base_station(self):
        # Malicious node adjacent to the BS injects directly.
        dep, adv, proto = attacked(JunkMinimumStrategy(), {1}, topology=line_topology(6), depth_bound=8)
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        result = proto.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.JUNK_AGGREGATION_PINPOINT
        assert_only_malicious_revoked(dep, {1})


def hub_deployment(num_spokes=12, seed=11):
    """A malicious hub (node 1) between the base station and
    ``num_spokes`` honest leaves.  Attacking through *different* spokes
    spreads the adversary's key exposures across many honest partners —
    the regime in which the θ rule separates attacker from framed
    bystanders (each honest spoke shares only its own few keys with the
    hub, while the hub accumulates every exposure)."""
    from repro.topology import Topology

    edges = [(0, 1)] + [(1, spoke) for spoke in range(2, num_spokes + 2)]
    dep = build_deployment(
        config=small_test_config(depth_bound=4),
        topology=Topology(num_spokes + 2, edges),
        malicious_ids={1},
        seed=seed,
    )
    adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=seed)
    proto = VMATProtocol(dep.network, adversary=adv)
    return dep, adv, proto


def framing_safe_theta(dep):
    """One above the largest honest-ring overlap with the adversary's
    loot — the quantity Figure 7 studies, computed exactly here because
    the test is omniscient."""
    loot = dep.network.adversary_pool_indices()
    return 1 + max(
        len(set(dep.registry.ring(h).indices) & loot) for h in dep.network.nodes
    )


class TestThresholdIntegration:
    def _attack_until_quiet(self, dep, proto, max_executions=200):
        """Rotate the minimum across spokes (fresh attack path each
        execution) until executions stop revoking."""
        spokes = [i for i in dep.topology.sensor_ids if i != 1]
        executions = []
        for round_index in range(max_executions):
            target = spokes[round_index % len(spokes)]
            readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
            readings[target] = 1.0
            result = proto.execute(MinQuery(), readings)
            executions.append(result)
            if result.produced_result:
                break
        return executions

    def test_theta_revokes_hub_without_framing(self):
        dep, adv, proto = hub_deployment()
        theta = framing_safe_theta(dep)
        dep.registry.revocation.theta = theta
        self._attack_until_quiet(dep, proto)
        assert 1 in dep.registry.revoked_sensors
        assert_only_malicious_revoked(dep, {1})

    def test_tiny_theta_frames_honest_spokes(self):
        """The left edge of Figure 7: θ far below the ring overlap lets
        the adversary frame honest partners."""
        dep, adv, proto = hub_deployment()
        dep.registry.revocation.theta = 2
        self._attack_until_quiet(dep, proto)
        assert dep.registry.revoked_sensors - {1}, (
            "tiny θ should have framed an honest spoke"
        )

    def test_keys_saved_by_threshold(self):
        """Section I: θ-revocation avoids revoking >90% of ring keys one
        by one (here with the downsized ring, proportionally)."""
        dep, adv, proto = hub_deployment()
        theta = framing_safe_theta(dep)
        dep.registry.revocation.theta = theta
        self._attack_until_quiet(dep, proto)
        assert 1 in dep.registry.revoked_sensors
        individually = sum(
            1 for e in dep.registry.revocation.log
            if e.kind == "key" and not e.reason.startswith("ring of")
        )
        ring_size = dep.config.keys.ring_size
        assert individually < ring_size / 2
        # Sanity: exposures stayed at/near θ, not the whole ring.
        assert individually <= theta + 2


class TestPinpointerSafety:
    @pytest.mark.parametrize("policy", ["truthful", "deny", "lie_yes", "coin"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_honest_collateral_across_policies_and_seeds(self, policy, seed):
        dep, adv, proto = attacked(
            DropMinimumStrategy(predtest=policy),
            {5, 9},
            topology=grid_topology(4, 4),
            depth_bound=10,
            seed=seed,
        )
        readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        session = proto.run_session(MinQuery(), readings, max_executions=120)
        assert_only_malicious_revoked(dep, {5, 9})
        assert session.final_estimate is not None
