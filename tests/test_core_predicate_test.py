"""Keyed predicate test (Section VI-A): Theorem 3 semantics under
honest and adversarial behaviour."""

from __future__ import annotations

import pytest

from repro import build_deployment, small_test_config
from repro.adversary import Adversary, PolicyStrategy
from repro.adversary.strategies import PassiveStrategy
from repro.core.predicate_test import (
    AggForwarded,
    AggReceived,
    run_keyed_predicate_test,
)
from repro.core.tree import form_tree
from repro.core.aggregation import run_aggregation
from repro.crypto.mac import compute_mac
from repro.net.message import ReadingMessage
from repro.topology import grid_topology, line_topology

NONCE = b"predtest-nonce"


def run_min_aggregation(deployment, adversary, readings, depth_bound):
    own = {}
    for node_id, node in deployment.network.nodes.items():
        node.begin_execution(reading=readings[node_id])
        node.query_values = [node.reading]
        key = deployment.registry.sensor_key(node_id)
        own[node_id] = [
            ReadingMessage(
                sensor_id=node_id,
                value=readings[node_id],
                mac=compute_mac(key, node_id, 0, readings[node_id], NONCE),
            )
        ]
    if adversary is not None:
        mal = deployment.network.malicious_ids
        adversary.begin_execution(
            {i: readings[i] for i in mal},
            {i: [readings[i]] for i in mal},
            {
                i: [
                    ReadingMessage(
                        sensor_id=i,
                        value=readings[i],
                        mac=compute_mac(
                            deployment.registry.sensor_key(i), i, 0, readings[i], NONCE
                        ),
                    )
                ]
                for i in mal
            },
        )
    form_tree(deployment.network, adversary, depth_bound)
    run_aggregation(
        deployment.network, adversary, depth_bound, NONCE, own, 1, lambda i, m: True
    )


@pytest.fixture
def aggregated_line(line_deployment):
    readings = {i: 100.0 + i for i in line_deployment.topology.sensor_ids}
    readings[9] = 1.0
    run_min_aggregation(line_deployment, None, readings, 12)
    return line_deployment


class TestTheorem3HonestSide:
    def test_satisfying_honest_holder_guarantees_success(self, aggregated_line):
        # Node 9 (level 9) forwarded value 1.0; ask exactly that.
        ring = aggregated_line.registry.ring(9)
        predicate = AggForwarded(
            level=9, value_bound=1.0, key_low=ring.indices[0], key_high=ring.indices[-1]
        )
        nonce = b"n1"
        assert run_keyed_predicate_test(
            aggregated_line.network, None, ("sensor", 9), predicate, nonce, 12
        )

    def test_unsatisfied_predicate_fails(self, aggregated_line):
        predicate = AggForwarded(level=9, value_bound=0.5, key_low=0, key_high=10**6)
        assert not run_keyed_predicate_test(
            aggregated_line.network, None, ("sensor", 9), predicate, b"n2", 12
        )

    def test_edge_key_test_finds_receiver(self, aggregated_line):
        net = aggregated_line.network
        key_index = aggregated_line.registry.edge_key_index(9, 8)
        predicate = AggReceived(
            id_low=8, id_high=8, value_bound=1.0, child_level=9, key_index=key_index
        )
        assert run_keyed_predicate_test(
            net, None, ("pool", key_index), predicate, b"n3", 12
        )

    def test_edge_key_test_respects_id_window(self, aggregated_line):
        key_index = aggregated_line.registry.edge_key_index(9, 8)
        predicate = AggReceived(
            id_low=1, id_high=7, value_bound=1.0, child_level=9, key_index=key_index
        )
        # Node 8 is outside the id window, so nobody satisfies.
        assert not run_keyed_predicate_test(
            aggregated_line.network, None, ("pool", key_index), predicate, b"n4", 12
        )

    def test_costs_two_flooding_rounds(self, aggregated_line):
        net = aggregated_line.network
        before = net.metrics.flooding_rounds
        run_keyed_predicate_test(
            net, None, ("sensor", 9),
            AggForwarded(level=9, value_bound=1.0, key_low=0, key_high=10**6),
            b"n5", 12,
        )
        assert net.metrics.flooding_rounds == before + 2.0


class TestTheorem3AdversarialSide:
    def _attacked(self, strategy, malicious={4}):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids=malicious,
            seed=9,
        )
        adv = Adversary(dep.network, strategy, seed=9)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        run_min_aggregation(dep, adv, readings, 10)
        return dep, adv

    def test_malicious_holder_can_lie_yes(self):
        dep, adv = self._attacked(PolicyStrategy(predtest="lie_yes"))
        key_index = dep.registry.ring(4).indices[0]
        # Predicate nobody honestly satisfies (absurd bound).
        predicate = AggReceived(
            id_low=1, id_high=15, value_bound=-1e18, child_level=3, key_index=key_index
        )
        assert run_keyed_predicate_test(
            dep.network, adv, ("pool", key_index), predicate, b"n6", 10
        )

    def test_nonholder_cannot_fake_success(self):
        dep, adv = self._attacked(PolicyStrategy(predtest="lie_yes"))
        # A pool key held by NO malicious sensor.
        outside = next(
            i
            for i in range(dep.config.keys.pool_size)
            if i not in dep.network.adversary_pool_indices()
        )
        predicate = AggReceived(
            id_low=1, id_high=15, value_bound=-1e18, child_level=3, key_index=outside
        )
        assert not run_keyed_predicate_test(
            dep.network, adv, ("pool", outside), predicate, b"n7", 10
        )

    def test_denying_adversary_cannot_block_honest_reply(self):
        """The flooding half of Theorem 3: honest success is guaranteed
        even when malicious relays refuse to forward."""
        dep, adv = self._attacked(PolicyStrategy(predtest="deny"), malicious={5, 6})
        # Honest node 15 (far corner) forwarded its own reading.
        node = dep.network.nodes[15]
        record = node.audit.agg_sends[0]
        predicate = AggForwarded(
            level=record.level,
            value_bound=record.message.value,
            key_low=0,
            key_high=10**6,
        )
        assert run_keyed_predicate_test(
            dep.network, adv, ("sensor", 15), predicate, b"n8", 10
        )

    def test_spurious_replies_die_at_first_honest_relay(self):
        dep, adv = self._attacked(PassiveStrategy())
        net = dep.network
        key_index = dep.registry.ring(4).indices[0]
        predicate = AggReceived(
            id_low=1, id_high=15, value_bound=-1e18, child_level=3, key_index=key_index
        )
        # Passive strategy answers truthfully (false) -> no reply at all;
        # in particular junk never propagates to a success.
        assert not run_keyed_predicate_test(
            net, adv, ("pool", key_index), predicate, b"n9", 10
        )
