"""End-to-end protocol driver: Theorems 2 and 7, all query types."""

from __future__ import annotations

import pytest

from repro import (
    AverageQuery,
    CountQuery,
    ExecutionOutcome,
    MinQuery,
    SumQuery,
    VMATProtocol,
    build_deployment,
    small_test_config,
)
from repro.adversary import (
    Adversary,
    DropMinimumStrategy,
    HideAndVetoStrategy,
    JunkMinimumStrategy,
    PassiveStrategy,
    SpuriousVetoStrategy,
)
from repro.errors import ProtocolError
from repro.topology import grid_topology, line_topology

from tests.conftest import assert_only_malicious_revoked


class TestHonestExecutions:
    def test_min_query_exact(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: 50.0 + i for i in deployment.topology.sensor_ids}
        readings[11] = 4.5
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.RESULT
        assert result.estimate == 4.5
        assert result.num_vetoers == 0

    def test_count_query_accurate(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {
            i: 1.0 if i % 3 == 0 else 0.0 for i in deployment.topology.sensor_ids
        }
        query = CountQuery(predicate=lambda r: r > 0.5, num_synopses=150)
        result = protocol.execute(query, readings)
        truth = query.true_value(list(readings.values()))
        assert result.produced_result
        assert abs(result.estimate - truth) / truth < 0.35

    def test_sum_query_accurate(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: float((i % 4) + 1) for i in deployment.topology.sensor_ids}
        query = SumQuery(num_synopses=150)
        result = protocol.execute(query, readings)
        truth = sum(readings.values())
        assert result.produced_result
        assert abs(result.estimate - truth) / truth < 0.35

    def test_average_query_accurate(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: float((i % 3) + 2) for i in deployment.topology.sensor_ids}
        query = AverageQuery(num_synopses=150)
        result = protocol.execute(query, readings)
        truth = query.true_value(list(readings.values()))
        assert result.produced_result
        assert abs(result.estimate - truth) / truth < 0.35

    def test_repeat_executions_use_fresh_nonces(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: 10.0 for i in deployment.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        protocol.execute(MinQuery(), readings)
        assert protocol.nonces.issued_count >= 2

    def test_happy_path_is_constant_flooding_rounds(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: 10.0 + i for i in deployment.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        # query announce + tree announce+flood + aggregation + conf
        # announce+flood: a constant independent of n.
        assert result.flooding_rounds <= 6.0


class TestTheorem2:
    """Correctness of any returned result: y <= w <= x, where x is the
    honest minimum and y the overall minimum."""

    @pytest.mark.parametrize(
        "strategy",
        [
            PassiveStrategy(),
            DropMinimumStrategy(predtest="deny"),
            HideAndVetoStrategy(),
        ],
    )
    def test_returned_results_are_correct(self, strategy):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={6},
            seed=13,
        )
        adv = Adversary(dep.network, strategy, seed=13)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 7.0
        result = protocol.execute(MinQuery(), readings)
        if result.produced_result:
            assert result.overall_true_value <= result.estimate <= result.honest_true_value

    def test_passive_adversary_changes_nothing(self):
        dep = build_deployment(num_nodes=25, seed=3, malicious_ids={4, 9})
        adv = Adversary(dep.network, PassiveStrategy(), seed=3)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert result.estimate == min(readings.values())
        assert not result.revocations


class TestTheorem7Sessions:
    def test_persistent_dropper_eventually_neutralized(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={5},
            seed=21,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=21)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 2.0
        session = protocol.run_session(MinQuery(), readings, max_executions=120)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {5})
        # every non-final execution made progress
        for execution in session.executions[:-1]:
            assert execution.revocations

    def test_truthful_attacker_neutralized_in_one_round(self):
        # Both neighbours of the far corner (15) are droppers, so the
        # minimum cannot route around them: every pre-result execution
        # must revoke a whole sensor (truthful droppers confess under
        # Figure 5 and lose their ring).
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={11, 14},
            seed=21,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="truthful"), seed=21)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 2.0
        session = protocol.run_session(MinQuery(), readings, max_executions=10)
        assert dep.registry.revoked_sensors
        assert dep.registry.revoked_sensors <= {11, 14}
        assert session.executions_until_result <= 3
        assert_only_malicious_revoked(dep, {11, 14})

    def test_junk_injector_session(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={6},
            seed=2,
        )
        adv = Adversary(dep.network, JunkMinimumStrategy(), seed=2)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        session = protocol.run_session(MinQuery(), readings, max_executions=120)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {6})

    def test_spurious_vetoer_session(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            malicious_ids={10},
            seed=5,
        )
        adv = Adversary(dep.network, SpuriousVetoStrategy(), seed=5)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        session = protocol.run_session(MinQuery(), readings, max_executions=150)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {10})

    def test_session_guard_detects_stalls(self, deployment):
        protocol = VMATProtocol(deployment.network)
        readings = {i: 10.0 for i in deployment.topology.sensor_ids}
        # max_executions=0 never runs -> guard raises
        with pytest.raises(ProtocolError):
            protocol.run_session(MinQuery(), readings, max_executions=0)


class TestRevokedSensorsExcluded:
    def test_revoked_sensor_cannot_veto_or_contribute(self):
        dep = build_deployment(num_nodes=20, seed=8)
        protocol = VMATProtocol(dep.network)
        readings = {i: 50.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        dep.registry.revoke_sensor(7, reason="operator decision")
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        # 7's reading is excluded from both the result and ground truth.
        assert result.estimate > 1.0
        assert result.honest_true_value > 1.0
