"""Query types and (ε, δ) sizing (Sections III, VIII)."""

from __future__ import annotations

import math

import pytest

from repro.core.queries import (
    AverageQuery,
    CountQuery,
    MinQuery,
    SumQuery,
    required_synopses,
)
from repro.core.synopses import ABSENT, estimate_sum, synopsis_value
from repro.errors import ConfigError

NONCE = b"query-test-nonce"


class TestRequiredSynopses:
    def test_monotone_in_epsilon(self):
        assert required_synopses(0.05, 0.1) > required_synopses(0.1, 0.1)

    def test_monotone_in_delta(self):
        assert required_synopses(0.1, 0.01) > required_synopses(0.1, 0.1)

    def test_paper_scale(self):
        # Around the paper's m = 100 for a ~10% error target.
        m = required_synopses(0.3, 0.05)
        assert 50 <= m <= 200

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            required_synopses(0.0, 0.1)
        with pytest.raises(ConfigError):
            required_synopses(0.1, 1.5)


class TestMinQuery:
    def test_one_instance_raw_reading(self):
        query = MinQuery()
        assert query.num_instances == 1
        assert query.instance_values(3, 17.5, NONCE) == [17.5]

    def test_estimate_is_identity(self):
        assert MinQuery().estimate([4.2]) == 4.2

    def test_true_value(self):
        assert MinQuery().true_value([3.0, 1.0, 2.0]) == 1.0
        assert MinQuery().true_value([]) == float("inf")

    def test_no_synopsis_domain(self):
        assert MinQuery().instance_reading_domain(0) is None


class TestSumQuery:
    def test_instances_are_synopses(self):
        query = SumQuery(num_synopses=5)
        values = query.instance_values(3, 7, NONCE)
        assert values == [synopsis_value(NONCE, 3, i, 7) for i in range(5)]

    def test_zero_reading_contributes_nothing(self):
        values = SumQuery(num_synopses=3).instance_values(3, 0, NONCE)
        assert values == [ABSENT] * 3

    def test_rejects_non_integer_reading(self):
        with pytest.raises(ConfigError):
            SumQuery(num_synopses=3).instance_values(3, 2.5, NONCE)
        with pytest.raises(ConfigError):
            SumQuery(num_synopses=3).instance_values(3, -1, NONCE)

    def test_estimate_matches_estimator(self):
        minima = [0.01, 0.02, 0.03]
        assert SumQuery(num_synopses=3).estimate(minima) == estimate_sum(minima)

    def test_true_value(self):
        assert SumQuery().true_value([1, 2, 3]) == 6.0

    def test_end_to_end_accuracy(self):
        """Simulate 50 sensors' synopses through pure query machinery."""
        query = SumQuery(num_synopses=300)
        readings = {i: (i % 7) + 1 for i in range(1, 51)}
        minima = [
            min(query.instance_values(i, readings[i], NONCE)[k] for i in readings)
            for k in range(300)
        ]
        truth = sum(readings.values())
        assert abs(query.estimate(minima) - truth) / truth < 0.25


class TestCountQuery:
    def test_predicate_gates_contribution(self):
        query = CountQuery(predicate=lambda r: r > 10, num_synopses=4)
        assert query.instance_values(3, 5.0, NONCE) == [ABSENT] * 4
        contributing = query.instance_values(3, 15.0, NONCE)
        assert all(v != ABSENT for v in contributing)

    def test_contributors_use_indicator_reading(self):
        query = CountQuery(num_synopses=4)
        assert query.instance_values(3, 99.0, NONCE) == [
            synopsis_value(NONCE, 3, i, 1) for i in range(4)
        ]

    def test_true_value_counts_predicate(self):
        query = CountQuery(predicate=lambda r: r >= 2)
        assert query.true_value([1, 2, 3]) == 2.0

    def test_domain_is_indicator_only(self):
        assert CountQuery().instance_reading_domain(0) == (1, 1)


class TestAverageQuery:
    def test_double_instances(self):
        query = AverageQuery(num_synopses=6)
        assert query.num_instances == 12

    def test_split_domains(self):
        query = AverageQuery(num_synopses=6)
        assert query.instance_reading_domain(0) == "config"
        assert query.instance_reading_domain(6) == (1, 1)

    def test_true_value(self):
        query = AverageQuery(predicate=lambda r: r > 0)
        assert query.true_value([2, 4, 0]) == 3.0
        assert query.true_value([]) == 0.0

    def test_end_to_end_average(self):
        query = AverageQuery(num_synopses=300)
        readings = {i: (i % 5) + 1 for i in range(1, 41)}
        all_values = {i: query.instance_values(i, readings[i], NONCE) for i in readings}
        minima = [
            min(all_values[i][k] for i in readings) for k in range(600)
        ]
        truth = sum(readings.values()) / len(readings)
        assert abs(query.estimate(minima) - truth) / truth < 0.3


class TestMaxQuery:
    def test_negation_round_trip(self):
        from repro.core.queries import MaxQuery

        query = MaxQuery()
        assert query.instance_values(3, 17.0, NONCE) == [-17.0]
        assert query.estimate([-17.0]) == 17.0

    def test_true_value(self):
        from repro.core.queries import MaxQuery

        assert MaxQuery().true_value([1.0, 9.0, 4.0]) == 9.0
        assert MaxQuery().true_value([]) == float("-inf")

    def test_end_to_end_exact(self):
        from repro import MaxQuery, VMATProtocol, build_deployment

        dep = build_deployment(num_nodes=25, seed=6)
        protocol = VMATProtocol(dep.network)
        readings = {i: float(i * 3 % 50) for i in dep.topology.sensor_ids}
        result = protocol.execute(MaxQuery(), readings)
        assert result.produced_result
        assert result.estimate == max(readings.values())

    def test_dropping_the_maximum_triggers_pinpointing(self):
        from repro import ExecutionOutcome, MaxQuery, VMATProtocol, build_deployment, small_test_config
        from repro.adversary import Adversary, DropMinimumStrategy
        from repro.topology import line_topology

        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=6,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=6)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 10_000.0  # the maximum, behind the dropper
        result = protocol.execute(MaxQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert result.revocations
