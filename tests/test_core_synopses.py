"""Exponential synopses (Section VIII): determinism, inversion,
estimator statistics."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.synopses import (
    ABSENT,
    estimate_sum,
    expected_relative_error,
    exponential_draw,
    invert_synopsis,
    relative_error,
    synopsis_value,
    verify_synopsis,
)

NONCE = b"synopsis-nonce"


class TestGeneration:
    def test_deterministic(self):
        assert synopsis_value(NONCE, 3, 0, 7) == synopsis_value(NONCE, 3, 0, 7)

    def test_distinct_across_instances_and_sensors(self):
        values = {
            synopsis_value(NONCE, sensor, instance, 5)
            for sensor in range(5)
            for instance in range(5)
        }
        assert len(values) == 25

    def test_scales_inversely_with_reading(self):
        a1 = synopsis_value(NONCE, 1, 0, 1)
        a10 = synopsis_value(NONCE, 1, 0, 10)
        assert a10 == pytest.approx(a1 / 10)

    def test_nonpositive_reading_is_absent(self):
        assert synopsis_value(NONCE, 1, 0, 0) == ABSENT
        assert synopsis_value(NONCE, 1, 0, -3) == ABSENT

    def test_exponential_draw_positive(self):
        draws = [exponential_draw(NONCE, i, 0) for i in range(500)]
        assert all(d > 0 for d in draws)
        # mean of Exp(1) is 1
        assert 0.85 < sum(draws) / len(draws) < 1.15


class TestInversionAndVerification:
    @given(reading=st.integers(1, 10_000), sensor=st.integers(1, 1000), instance=st.integers(0, 99))
    def test_inversion_round_trip(self, reading, sensor, instance):
        value = synopsis_value(NONCE, sensor, instance, reading)
        assert invert_synopsis(NONCE, sensor, instance, value, 1, 10_000) == reading

    def test_verify_accepts_genuine(self):
        value = synopsis_value(NONCE, 7, 3, 42)
        assert verify_synopsis(NONCE, 7, 3, value, 1, 10_000)

    def test_verify_accepts_absent(self):
        assert verify_synopsis(NONCE, 7, 3, ABSENT, 1, 10_000)

    def test_verify_rejects_fabricated_small_value(self):
        # The choking-style attack on synopses: claim an absurdly small
        # value to drag the minimum down.  No legal reading produces it.
        assert not verify_synopsis(NONCE, 7, 3, 1e-12, 1, 10_000)

    def test_verify_rejects_value_for_out_of_domain_reading(self):
        value = synopsis_value(NONCE, 7, 3, 42)
        assert not verify_synopsis(NONCE, 7, 3, value, 1, 10)  # 42 outside [1,10]

    def test_verify_rejects_wrong_sensor(self):
        value = synopsis_value(NONCE, 7, 3, 42)
        assert not verify_synopsis(NONCE, 8, 3, value, 1, 10_000)

    def test_verify_rejects_nonpositive_and_nan(self):
        assert not verify_synopsis(NONCE, 7, 3, -1.0, 1, 10_000)
        assert not verify_synopsis(NONCE, 7, 3, float("nan"), 1, 10_000)

    def test_verify_at_domain_boundaries(self):
        """reading_min and reading_max themselves must verify and invert:
        the single-inversion check may not exclude either endpoint."""
        for boundary in (1, 10_000):
            value = synopsis_value(NONCE, 7, 3, boundary)
            assert verify_synopsis(NONCE, 7, 3, value, 1, 10_000)
            assert invert_synopsis(NONCE, 7, 3, value, 1, 10_000) == boundary
            # A one-reading domain pinned exactly on the boundary.
            assert verify_synopsis(NONCE, 7, 3, value, boundary, boundary)
            assert invert_synopsis(NONCE, 7, 3, value, boundary, boundary) == boundary

    def test_invert_candidates_straddling_an_integer(self):
        """``e / value`` lands near (but rarely on) the true integer:
        floor/ceil/round candidates must recover it on both sides.

        ``e / (e / r)`` can round to just below or just above ``r``; the
        old double-inversion (``invert(value)`` then ``isclose``) lost
        readings whose recomputed candidate crossed the integer.  Sweep
        enough (sensor, instance, reading) cells to hit both directions.
        """
        checked = 0
        for sensor in range(1, 60):
            for instance in range(8):
                for reading in (1, 2, 3, 9_999, 10_000):
                    value = synopsis_value(NONCE, sensor, instance, reading)
                    e = exponential_draw(NONCE, sensor, instance)
                    assert (
                        invert_synopsis(NONCE, sensor, instance, value, 1, 10_000)
                        == reading
                    ), (sensor, instance, reading, e / value)
                    checked += 1
        assert checked == 59 * 8 * 5

    def test_count_domain_restriction_blocks_inflation(self):
        """A count synopsis must decode to reading 1; a synopsis for a
        large reading (tiny value => huge count estimate) is rejected."""
        cheat = synopsis_value(NONCE, 7, 3, 5_000)
        assert not verify_synopsis(NONCE, 7, 3, cheat, 1, 1)
        honest = synopsis_value(NONCE, 7, 3, 1)
        assert verify_synopsis(NONCE, 7, 3, honest, 1, 1)


class TestEstimator:
    def test_exact_on_expectation_structure(self):
        # sum of m Exp(S) draws has mean m/S, so the estimator inverts it.
        rng = random.Random(1)
        m, s = 400, 57
        minima = [rng.expovariate(s) for _ in range(m)]
        estimate = estimate_sum(minima)
        assert relative_error(estimate, s) < 0.2

    def test_all_absent_estimates_zero(self):
        assert estimate_sum([ABSENT, ABSENT]) == 0.0

    def test_mixed_absent_uses_finite_instances(self):
        rng = random.Random(2)
        minima = [rng.expovariate(100) for _ in range(200)] + [ABSENT] * 10
        assert relative_error(estimate_sum(minima), 100) < 0.3

    def test_empty_minima_rejected(self):
        with pytest.raises(ValueError):
            estimate_sum([])

    def test_relative_error_requires_positive_truth(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_expected_relative_error_paper_value(self):
        # m = 100 -> expected |error| ~ 8%, "below 10%" as in Section IX.
        assert 0.05 < expected_relative_error(100) < 0.10

    def test_expected_relative_error_shrinks_with_m(self):
        assert expected_relative_error(400) < expected_relative_error(100)

    @settings(max_examples=10, deadline=None)
    @given(true_sum=st.integers(10, 5_000), seed=st.integers(0, 100))
    def test_estimator_concentration_property(self, true_sum, seed):
        rng = random.Random(seed)
        m = 200
        minima = [rng.expovariate(true_sum) for _ in range(m)]
        # 5-sigma bound on the Gamma(m, S) concentration.
        assert relative_error(estimate_sum(minima), true_sum) < 5 / math.sqrt(m) + 0.05
