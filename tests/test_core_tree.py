"""Tree formation (Section IV-A): timestamp vs hop count, wormholes,
multipath rings."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import build_deployment, small_test_config
from repro.adversary import Adversary, PassiveStrategy, WormholeStrategy
from repro.config import NetworkConfig
from repro.core.tree import form_tree
from repro.errors import ProtocolError
from repro.topology import grid_topology, line_topology, star_topology


class TestTimestampTree:
    def test_levels_equal_depth_without_adversary(self, line_deployment):
        result = form_tree(line_deployment.network, None, 12)
        depths = line_deployment.topology.depths()
        for node, level in result.levels.items():
            assert level == depths[node]

    def test_every_honest_sensor_gets_valid_level(self, deployment):
        result = form_tree(deployment.network, None, deployment.config.protocol.depth_bound)
        assert result.invalid_level_sensors == set()
        assert result.valid_fraction(deployment.network.nodes) == 1.0

    def test_parents_are_one_level_above(self, grid_deployment):
        result = form_tree(grid_deployment.network, None, 10)
        for node, parents in result.parents.items():
            for parent in parents:
                parent_level = 0 if parent == 0 else result.levels.get(parent)
                assert parent_level == result.levels[node] - 1

    def test_star_topology_all_level_one(self):
        dep = build_deployment(topology=star_topology(8), seed=1)
        result = form_tree(dep.network, None, 6)
        assert all(level == 1 for level in result.levels.values())
        assert all(parents == [0] for parents in result.parents.values())

    def test_unknown_variant_rejected(self, deployment):
        with pytest.raises(ProtocolError):
            form_tree(deployment.network, None, 6, variant="bogus")

    def test_flooding_round_charged(self, deployment):
        before = deployment.network.metrics.flooding_rounds
        form_tree(deployment.network, None, 6)
        assert deployment.network.metrics.flooding_rounds > before


class TestMultipath:
    def test_multipath_collects_all_same_level_parents(self):
        config = replace(
            small_test_config(depth_bound=10),
            network=NetworkConfig(multipath=True),
        )
        dep = build_deployment(config=config, topology=grid_topology(4, 4), seed=2)
        result = form_tree(dep.network, None, 10)
        # Interior grid nodes have two shortest paths to the corner BS.
        multi_parent = [n for n, parents in result.parents.items() if len(parents) > 1]
        assert multi_parent, "grid should produce multi-parent nodes"
        for node, parents in result.parents.items():
            assert len(parents) == len(set(parents))


class TestWormhole:
    def _deployment(self, variant):
        # Line: BS .. entry=1 near BS, exit=8 far away; victim 9 beyond exit.
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(10),
            malicious_ids={1, 8},
            seed=5,
        )
        adv = Adversary(dep.network, WormholeStrategy(entry=1, exit=8, inflation=20), seed=5)
        result = form_tree(dep.network, adv, 12, variant=variant)
        return dep, result

    def test_hopcount_variant_is_vulnerable(self):
        dep, result = self._deployment("hopcount")
        # The replayed beacon reaches node 7/9 before the honest flood,
        # carrying an inflated hop count -> invalid level.
        assert result.invalid_level_sensors, "wormhole should disenfranchise victims"

    def test_timestamp_variant_is_immune(self):
        dep, result = self._deployment("timestamp")
        assert result.invalid_level_sensors == set()
        # Victims' levels may be *smaller* (the tunnel is a shortcut) but
        # never exceed the bound — the paper's property.
        for level in result.levels.values():
            assert 1 <= level <= 12

    def test_wormhole_lowers_but_never_raises_timestamp_levels(self):
        # Grid keeps the honest component connected, so the paper's
        # guarantee (level <= honest-path depth) applies to every victim.
        topo = grid_topology(4, 4)
        malicious = {5, 10}
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=topo,
            malicious_ids=malicious,
            seed=6,
        )
        adv = Adversary(dep.network, WormholeStrategy(entry=5, exit=10, inflation=20), seed=6)
        result = form_tree(dep.network, adv, 10, variant="timestamp")
        honest_depths = topo.depths(
            include={i for i in topo.node_ids if i not in malicious}
        )
        for node, level in result.levels.items():
            assert level <= honest_depths[node]


class TestPassiveAdversaryParity:
    def test_passive_malicious_nodes_keep_tree_intact(self):
        dep = build_deployment(num_nodes=25, seed=9, malicious_ids={3, 7})
        adv = Adversary(dep.network, PassiveStrategy(), seed=9)
        result = form_tree(dep.network, adv, dep.config.protocol.depth_bound)
        assert result.invalid_level_sensors == set()
