"""Crypto toolbox: encoding, MACs, hashes, PRF, nonces."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    compute_mac,
    decode_parts,
    derive_key,
    encode_parts,
    hash_chain,
    oneway_hash,
    prf_bytes,
    prf_uniform,
    sample_distinct_indices,
    verify_mac,
)
from repro.crypto.hash import verify_chain_link
from repro.crypto.nonce import NonceSource
from repro.errors import CryptoError, MacVerificationError

# Field values the canonical encoding must round-trip.
_fields = st.one_of(
    st.integers(min_value=-(2**100), max_value=2**100),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
    st.booleans(),
    st.none(),
)


class TestEncoding:
    def test_round_trip_simple(self):
        parts = (1, "hello", b"\x00\xff", 2.5, True, None)
        assert decode_parts(encode_parts(*parts)) == parts

    def test_round_trip_nested(self):
        parts = ((1, (2, "x")), b"raw")
        assert decode_parts(encode_parts(*parts)) == parts

    def test_injective_across_field_boundaries(self):
        # "ab" + "c" must not collide with "a" + "bc".
        assert encode_parts("ab", "c") != encode_parts("a", "bc")

    def test_type_tags_distinguish_value_kinds(self):
        assert encode_parts(1) != encode_parts("1")
        assert encode_parts(1) != encode_parts(1.0)
        assert encode_parts(True) != encode_parts(1)
        assert encode_parts(b"") != encode_parts("")

    def test_rejects_unencodable(self):
        with pytest.raises(CryptoError):
            encode_parts(object())

    def test_rejects_truncated_data(self):
        data = encode_parts("hello")
        with pytest.raises(CryptoError):
            decode_parts(data[:-1])

    @given(st.lists(_fields, max_size=6))
    def test_round_trip_property(self, parts):
        assert decode_parts(encode_parts(*parts)) == tuple(parts)

    @given(st.lists(_fields, min_size=1, max_size=4), st.lists(_fields, min_size=1, max_size=4))
    def test_injectivity_property(self, a, b):
        if tuple(a) != tuple(b):
            assert encode_parts(*a) != encode_parts(*b)


class TestMac:
    def test_verify_accepts_genuine(self):
        mac = compute_mac(b"key", 1, "v", b"nonce")
        assert verify_mac(b"key", mac, 1, "v", b"nonce")

    def test_verify_rejects_wrong_key(self):
        mac = compute_mac(b"key", "payload")
        assert not verify_mac(b"other", mac, "payload")

    def test_verify_rejects_modified_payload(self):
        mac = compute_mac(b"key", "payload", 7)
        assert not verify_mac(b"key", mac, "payload", 8)

    def test_verify_rejects_reordered_fields(self):
        mac = compute_mac(b"key", "a", "b")
        assert not verify_mac(b"key", mac, "b", "a")

    def test_default_length_is_8_bytes(self):
        assert len(compute_mac(b"key", "x")) == 8

    def test_custom_length(self):
        assert len(compute_mac(b"key", "x", length=16)) == 16

    def test_empty_key_rejected(self):
        with pytest.raises(MacVerificationError):
            compute_mac(b"", "x")
        with pytest.raises(MacVerificationError):
            verify_mac(b"", b"\x00" * 8, "x")

    def test_empty_mac_fails_verification(self):
        assert not verify_mac(b"key", b"", "x")

    @given(st.binary(min_size=1, max_size=32), st.lists(_fields, max_size=4))
    def test_mac_round_trip_property(self, key, parts):
        mac = compute_mac(key, *parts)
        assert verify_mac(key, mac, *parts)


class TestHashChain:
    def test_chain_links(self):
        chain = hash_chain(b"seed", 5)
        assert len(chain) == 6
        for i in range(5):
            assert chain[i] == oneway_hash(chain[i + 1])

    def test_anchor_is_most_hashed(self):
        chain = hash_chain(b"seed", 3)
        value = b"seed"
        for _ in range(3):
            value = oneway_hash(value)
        assert chain[0] == value

    def test_verify_chain_link_distances(self):
        chain = hash_chain(b"seed", 10)
        anchor = chain[0]
        assert verify_chain_link(anchor, chain[0], 10) == 0
        assert verify_chain_link(anchor, chain[4], 10) == 4
        assert verify_chain_link(anchor, b"bogus" * 6 + b"xx", 10) == -1

    def test_zero_length_chain(self):
        assert hash_chain(b"s", 0) == [b"s"]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            hash_chain(b"s", -1)


class TestPrf:
    def test_deterministic(self):
        assert prf_bytes(b"s", "a", 1) == prf_bytes(b"s", "a", 1)

    def test_distinct_inputs_distinct_outputs(self):
        assert prf_bytes(b"s", "a") != prf_bytes(b"s", "b")
        assert prf_bytes(b"s1", "a") != prf_bytes(b"s2", "a")

    def test_length_expansion(self):
        out = prf_bytes(b"s", "x", length=100)
        assert len(out) == 100
        # expansion is a prefix-consistent stream
        assert out[:16] == prf_bytes(b"s", "x", length=16)

    def test_rejects_empty_secret(self):
        with pytest.raises(CryptoError):
            prf_bytes(b"", "x")

    def test_derive_key_domain_separation(self):
        assert derive_key(b"m", "pool-key", 1) != derive_key(b"m", "sensor-key", 1)

    def test_prf_uniform_in_unit_interval(self):
        values = [prf_uniform(b"s", i) for i in range(200)]
        assert all(0 < v < 1 for v in values)
        # crude uniformity: mean near 0.5
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_sample_distinct_indices(self):
        indices = sample_distinct_indices(b"seed", 100, 30)
        assert len(indices) == 30
        assert len(set(indices)) == 30
        assert indices == sorted(indices)
        assert all(0 <= i < 100 for i in indices)

    def test_sample_deterministic(self):
        assert sample_distinct_indices(b"s", 50, 10) == sample_distinct_indices(b"s", 50, 10)

    def test_sample_rejects_oversampling(self):
        with pytest.raises(CryptoError):
            sample_distinct_indices(b"s", 5, 6)


class TestNonceSource:
    def test_nonces_never_repeat(self):
        source = NonceSource(b"secret")
        nonces = [source.next() for _ in range(500)]
        assert len(set(nonces)) == 500

    def test_was_issued(self):
        source = NonceSource(b"secret")
        nonce = source.next()
        assert source.was_issued(nonce)
        assert not source.was_issued(b"never")

    def test_deterministic_sequence(self):
        a = NonceSource(b"k")
        b = NonceSource(b"k")
        assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]

    def test_issued_count(self):
        source = NonceSource(b"k")
        source.next()
        source.next()
        assert source.issued_count == 2
