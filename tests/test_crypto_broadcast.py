"""μTESLA-style authenticated broadcast: forgery resistance, one-time
semantics, chain discipline."""

from __future__ import annotations

import pytest

from repro.crypto import BroadcastAuthority, BroadcastVerifier, KeyDisclosure
from repro.crypto.authenticated_broadcast import AuthenticatedMessage
from repro.crypto.hash import oneway_hash
from repro.crypto.mac import compute_mac
from repro.errors import BroadcastAuthError


@pytest.fixture
def authority():
    return BroadcastAuthority(b"chain-seed-32-bytes-of-material!", chain_length=64)


@pytest.fixture
def verifier(authority):
    return BroadcastVerifier(authority.anchor)


class TestHappyPath:
    def test_sign_then_disclose_verifies(self, authority, verifier):
        message = authority.sign("query", 42)
        assert verifier.receive_message(message)
        payload = verifier.receive_disclosure(authority.disclose(message.index))
        assert payload == ("query", 42)

    def test_sequence_of_broadcasts(self, authority, verifier):
        for i in range(10):
            message = authority.sign("msg", i)
            verifier.receive_message(message)
            assert verifier.receive_disclosure(authority.disclose(message.index)) == ("msg", i)
        assert verifier.verified_index == 10

    def test_gap_in_indices_still_verifies(self, authority, verifier):
        authority.sign("skipped a")  # never disclosed
        authority.sign("skipped b")
        message = authority.sign("real")
        verifier.receive_message(message)
        assert verifier.receive_disclosure(authority.disclose(message.index)) == ("real",)


class TestAttacks:
    def test_forged_payload_rejected(self, authority, verifier):
        message = authority.sign("genuine")
        forged = AuthenticatedMessage(
            index=message.index, payload=("forged",), mac=message.mac
        )
        verifier.receive_message(forged)
        assert verifier.receive_disclosure(authority.disclose(message.index)) is None

    def test_forged_mac_rejected(self, authority, verifier):
        message = authority.sign("genuine")
        forged = AuthenticatedMessage(
            index=message.index,
            payload=("forged",),
            mac=compute_mac(b"attacker-key", message.index, "forged"),
        )
        verifier.receive_message(forged)
        assert verifier.receive_disclosure(authority.disclose(message.index)) is None

    def test_disclosed_key_cannot_authenticate_new_message(self, authority, verifier):
        message = authority.sign("genuine")
        verifier.receive_message(message)
        disclosure = authority.disclose(message.index)
        assert verifier.receive_disclosure(disclosure) == ("genuine",)
        # Adversary now knows the chain key and crafts a new message for
        # the same index — one-time semantics must reject it.
        replay = AuthenticatedMessage(
            index=message.index,
            payload=("evil",),
            mac=compute_mac(disclosure.chain_key, message.index, "evil"),
        )
        assert not verifier.receive_message(replay)
        assert verifier.receive_disclosure(disclosure) is None

    def test_bogus_disclosure_rejected(self, authority, verifier):
        message = authority.sign("genuine")
        verifier.receive_message(message)
        bogus = KeyDisclosure(index=message.index, chain_key=b"not-a-chain-key!")
        assert verifier.receive_disclosure(bogus) is None
        # The genuine disclosure still works afterwards.
        assert verifier.receive_disclosure(authority.disclose(message.index)) == ("genuine",)

    def test_conflicting_wave1_claims_first_wins(self, authority, verifier):
        message = authority.sign("genuine")
        verifier.receive_message(message)
        conflicting = AuthenticatedMessage(
            index=message.index, payload=("evil",), mac=b"\x00" * 8
        )
        assert not verifier.receive_message(conflicting)
        assert verifier.receive_disclosure(authority.disclose(message.index)) == ("genuine",)

    def test_stale_index_rejected(self, authority, verifier):
        first = authority.sign("one")
        second = authority.sign("two")
        verifier.receive_message(second)
        verifier.receive_disclosure(authority.disclose(second.index))
        # Index 1 is now retired even though it was never delivered.
        verifier.receive_message(first)
        assert verifier.receive_disclosure(authority.disclose(first.index)) is None


class TestAuthorityDiscipline:
    def test_double_disclosure_rejected(self, authority):
        message = authority.sign("x")
        authority.disclose(message.index)
        with pytest.raises(BroadcastAuthError):
            authority.disclose(message.index)

    def test_disclosing_unsigned_index_rejected(self, authority):
        with pytest.raises(BroadcastAuthError):
            authority.disclose(99)

    def test_chain_exhaustion(self):
        authority = BroadcastAuthority(b"seed", chain_length=2)
        authority.sign("a")
        authority.sign("b")  # chain_length == number of signable slots
        with pytest.raises(BroadcastAuthError):
            authority.sign("c")

    def test_remaining_counts_down(self, authority):
        before = authority.remaining
        authority.sign("x")
        assert authority.remaining == before - 1
