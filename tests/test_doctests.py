"""Docstring examples must keep working (they are the first code a new
user copies)."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.campaign.registry
import repro.sim.engine
import repro.tracing

MODULES_WITH_EXAMPLES = [repro, repro.campaign.registry, repro.sim.engine, repro.tracing]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
