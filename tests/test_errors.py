"""Exception hierarchy: one base, meaningful subtyping."""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    AuditTrailError,
    BroadcastAuthError,
    ConfigError,
    CryptoError,
    KeyManagementError,
    MacVerificationError,
    NetworkError,
    PinpointError,
    ProtocolError,
    ReproError,
    RevocationError,
    SimulationError,
    TopologyError,
)


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls.__name__

    def test_crypto_subtree(self):
        assert issubclass(MacVerificationError, CryptoError)
        assert issubclass(BroadcastAuthError, CryptoError)

    def test_protocol_subtree(self):
        assert issubclass(AuditTrailError, ProtocolError)
        assert issubclass(PinpointError, ProtocolError)

    def test_key_subtree(self):
        assert issubclass(RevocationError, KeyManagementError)

    def test_siblings_are_distinct(self):
        assert not issubclass(ConfigError, TopologyError)
        assert not issubclass(NetworkError, SimulationError)

    def test_every_error_is_documented(self):
        for cls in all_error_classes():
            assert cls.__doc__ and cls.__doc__.strip(), cls.__name__

    def test_single_except_catches_package_failures(self):
        """The usability promise of the hierarchy: one except clause."""
        from repro.config import ClockConfig
        from repro.topology import line_topology

        with pytest.raises(ReproError):
            ClockConfig(interval_length=0.0)
        with pytest.raises(ReproError):
            line_topology(5).neighbors(99)
