"""Every example script must run clean end-to-end (they double as
integration tests: each exercises a different attack/defence path)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate what happened"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
