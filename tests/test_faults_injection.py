"""Fault injection: determinism, loss accounting, benign-failure safety.

The contract under test is twofold.  **Determinism**: a run is a pure
function of ``(plan, seed)`` — two fresh deployments under the same
plan produce byte-identical :meth:`~repro.metrics.Metrics.to_dict`
snapshots, and an *empty* plan reproduces the injector-free run
bit-for-bit.  **Safety**: benign failures (crash, partition, loss,
drift) degrade executions — messages are lost, outcomes may go
inconclusive — but never revoke an honest sensor.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.faults import (
    BroadcastDelay,
    BroadcastLoss,
    BurstLoss,
    ClockDrift,
    Duplicate,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    Partition,
)
from repro.net.message import TreeBeacon
from repro.sim import IntervalSchedule, SimulationEngine
from repro.topology import grid_topology
from repro.tracing import Tracer

GRID = 4  # 4x4 grid, base station 0 at the corner, sensors 1..15
DEPTH = 2 * (GRID - 1)


def deploy(seed=7):
    return build_deployment(
        config=small_test_config(depth_bound=DEPTH + 2),
        topology=grid_topology(GRID, GRID),
        seed=seed,
    )


def readings(deployment):
    return {i: 20.0 + (i % 7) for i in deployment.topology.sensor_ids}


def run_executions(plan, *, seed=7, executions=2, tracer=False):
    deployment = deploy(seed)
    network = deployment.network
    if plan is not None:
        FaultInjector(plan, seed=seed).attach(network)
    trace = Tracer.attach(network) if tracer else None
    protocol = VMATProtocol(network)
    results = [protocol.execute(MinQuery(), readings(deployment)) for _ in range(executions)]
    return network, results, trace


class ScriptedRng:
    """Stands in for the injector's stream with a fixed draw script."""

    def __init__(self, draws):
        self.draws = list(draws)
        self.consumed = 0

    def random(self):
        self.consumed += 1
        return self.draws.pop(0)


CRASH_PLAN = FaultPlan(
    "crash-only",
    events=(
        NodeCrash(node=5, start=2, end=8),
        NodeCrash(node=11, start=4, end=10),
    ),
)


class TestDeterminism:
    def test_same_plan_same_seed_identical_metrics(self):
        net_a, _, _ = run_executions(CRASH_PLAN, seed=7)
        net_b, _, _ = run_executions(CRASH_PLAN, seed=7)
        assert net_a.metrics.to_dict() == net_b.metrics.to_dict()

    def test_seed_changes_the_run(self):
        plan = FaultPlan(
            "burst", events=(BurstLoss(loss_rate=0.4, start=1, end=60),)
        )
        net_a, _, _ = run_executions(plan, seed=7)
        net_b, _, _ = run_executions(plan, seed=8)
        assert net_a.metrics.to_dict() != net_b.metrics.to_dict()

    def test_empty_plan_matches_injector_free_run_exactly(self):
        """An attached no-op injector must not perturb a single byte."""
        net_bare, results_bare, _ = run_executions(None)
        net_noop, results_noop, _ = run_executions(FaultPlan("noop"))
        assert net_bare.metrics.to_dict() == net_noop.metrics.to_dict()
        assert [r.estimate for r in results_bare] == [r.estimate for r in results_noop]
        assert net_noop.metrics.faults_injected == {}


class TestBenignSafety:
    def test_crash_only_plan_never_revokes(self):
        network, results, _ = run_executions(CRASH_PLAN, executions=3)
        assert all(not r.revocations for r in results)
        assert network.metrics.crash_intervals > 0
        assert network.metrics.messages_lost > 0
        assert network.metrics.faults_injected["crash"] == 2

    def test_crashed_node_abstains_from_vetoing(self):
        network, _, _ = run_executions(CRASH_PLAN, executions=1)
        assert network.nodes[5].crash_suspected

    def test_total_partition_goes_inconclusive_not_revoked(self):
        plan = FaultPlan(
            "island",
            events=(Partition(nodes=tuple(range(1, GRID * GRID)), start=1, end=10_000),),
        )
        network, results, _ = run_executions(plan, executions=1)
        result = results[0]
        assert result.outcome is ExecutionOutcome.INCONCLUSIVE
        assert not result.revocations
        assert result.inconclusive_reason
        assert network.metrics.partition_intervals > 0

    def test_drift_past_the_guard_band_loses_frames_not_nodes(self):
        plan = FaultPlan(
            "late-clock",
            events=(ClockDrift(node=6, drift=5.0, start=1, end=10_000),),
        )
        network, results, _ = run_executions(plan, executions=2)
        assert all(not r.revocations for r in results)
        assert network.metrics.faults_injected["late-frame"] > 0

    def test_missed_broadcast_marks_node_suspected_not_revoked(self):
        plan = FaultPlan("deaf", events=(BroadcastLoss(round=1, nodes=(7,)),))
        network, results, _ = run_executions(plan, executions=1)
        assert not results[0].revocations
        assert network.nodes[7].crash_suspected
        assert network.metrics.faults_injected["broadcast-loss"] == 1
        assert network.metrics.faults_injected["broadcast-miss"] >= 1

    def test_duplicates_keep_the_protocol_idempotent(self):
        plan = FaultPlan(
            "echo", events=(Duplicate(probability=0.6, start=1, end=10_000),)
        )
        net_dup, results, _ = run_executions(plan, executions=2)
        net_bare, bare_results, _ = run_executions(None, executions=2)
        assert [r.estimate for r in results] == [r.estimate for r in bare_results]
        assert all(not r.revocations for r in results)
        assert net_dup.metrics.faults_injected["duplicate"] > 0


class TestLossAccounting:
    def test_messages_lost_equals_per_receiver_drops(self):
        """Three receivers, three draws; exactly the sub-rate draws drop."""
        deployment = deploy()
        network = deployment.network
        plan = FaultPlan(
            "burst", events=(BurstLoss(loss_rate=0.5, start=1, end=100),)
        )
        injector = FaultInjector(plan, seed=0).attach(network)
        injector.rng = ScriptedRng([0.9, 0.1, 0.9])  # only the 2nd draw drops
        phase = network.new_phase("probe", 3)
        phase.begin_interval(1)
        receivers = network.secure_neighbors(5)[:3]
        assert len(receivers) == 3
        phase.send(5, receivers, TreeBeacon(origin=5, hop_count=1), interval=1)
        assert injector.rng.consumed == 3  # one independent draw per receiver
        assert network.metrics.messages_lost == 1
        assert network.metrics.faults_injected["burst-loss-drop"] == 1
        # Airtime is charged for the dropped copy too: the sender cannot
        # know the receiver's radio faded.
        assert network.metrics.messages_sent[5] == 3

    def test_crashed_sender_burns_no_airtime(self):
        deployment = deploy()
        network = deployment.network
        plan = FaultPlan("dead-tx", events=(NodeCrash(node=5, start=1, end=100),))
        FaultInjector(plan, seed=0).attach(network)
        phase = network.new_phase("probe", 3)
        phase.begin_interval(1)
        receivers = network.secure_neighbors(5)[:2]
        phase.send(5, receivers, TreeBeacon(origin=5, hop_count=1), interval=1)
        assert network.metrics.messages_lost == len(receivers)
        assert network.metrics.messages_sent[5] == 0
        assert network.metrics.bytes_sent[5] == 0

    def test_dead_receiver_still_costs_the_sender(self):
        deployment = deploy()
        network = deployment.network
        down = network.secure_neighbors(0)[0]
        plan = FaultPlan("dead-rx", events=(NodeCrash(node=down, start=1, end=100),))
        FaultInjector(plan, seed=0).attach(network)
        phase = network.new_phase("probe", 3)
        phase.begin_interval(1)
        phase.send(0, [down], TreeBeacon(origin=0, hop_count=1), interval=1)
        assert network.metrics.messages_lost == 1
        assert network.metrics.messages_sent[0] == 1
        assert network.metrics.bytes_sent[0] > 0
        assert network.metrics.messages_received[down] == 0

    def test_duplicate_charges_the_receive_side_only(self):
        deployment = deploy()
        network = deployment.network
        plan = FaultPlan(
            "echo", events=(Duplicate(probability=0.5, start=1, end=100),)
        )
        injector = FaultInjector(plan, seed=0).attach(network)
        injector.rng = ScriptedRng([0.1])  # the one delivery duplicates
        receiver = network.secure_neighbors(0)[0]
        phase = network.new_phase("probe", 3)
        phase.begin_interval(1)
        phase.send(0, [receiver], TreeBeacon(origin=0, hop_count=1), interval=1)
        assert network.metrics.messages_sent[0] == 1
        assert network.metrics.messages_received[receiver] == 2
        assert len(phase.inbox(receiver, 1)) == 2


class TestObservability:
    def test_tracer_sees_fault_activations(self):
        _, _, trace = run_executions(CRASH_PLAN, executions=1, tracer=True)
        kinds = {e.fields["fault"] for e in trace.of_kind("fault")}
        assert "crash" in kinds

    def test_broadcast_delay_is_charged_as_flooding_rounds(self):
        plan = FaultPlan("slow", events=(BroadcastDelay(round=1, extra_rounds=2.0),))
        net_slow, _, _ = run_executions(plan, executions=1)
        net_fast, _, _ = run_executions(None, executions=1)
        assert (
            net_slow.metrics.flooding_rounds
            == net_fast.metrics.flooding_rounds + 2.0
        )
        assert net_slow.metrics.faults_injected["broadcast-delay"] == 1

    def test_engine_time_hook_advances_the_injector(self):
        deployment = deploy()
        injector = FaultInjector(FaultPlan("noop"), seed=0).attach(deployment.network)
        engine = SimulationEngine()
        schedule = IntervalSchedule(start_time=0.0, interval_length=1.0, num_intervals=10)
        injector.bind_engine(engine, schedule)
        engine.schedule(3.5, lambda: None)
        engine.run()
        assert injector.now == 4  # time 3.5 sits in interval 4

    def test_injector_clock_is_monotone(self):
        injector = FaultInjector(FaultPlan("noop"), seed=0)
        injector.advance_to(5)
        injector.advance_to(3)
        assert injector.now == 5
