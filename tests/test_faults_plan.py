"""Fault plans: typed events, JSON round-trip, stable hash, presets."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CHAOS_PROFILES,
    BroadcastDelay,
    BroadcastLoss,
    BurstLoss,
    ClockDrift,
    Duplicate,
    FaultPlan,
    LinkDown,
    NodeCrash,
    Partition,
    chaos_plan,
)
from repro.faults.plan import EVENT_TYPES, FaultEvent


def sample_plan() -> FaultPlan:
    """One plan containing every event kind."""
    return FaultPlan(
        name="kitchen-sink",
        description="every kind once",
        events=(
            NodeCrash(node=3, start=2, end=6),
            LinkDown(a=1, b=2, start=1, end=4),
            Partition(nodes=(4, 5), start=3, end=8),
            BurstLoss(receiver=None, loss_rate=0.25, start=1, end=9),
            Duplicate(receiver=2, probability=0.5, start=2, end=5),
            BroadcastLoss(round=1, nodes=(3,)),
            BroadcastDelay(round=2, extra_rounds=2.0),
            ClockDrift(node=6, drift=1.5, start=4, end=7),
        ),
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_plan(self):
        plan = sample_plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.plan_hash() == plan.plan_hash()

    def test_every_kind_round_trips(self):
        for event in sample_plan().events:
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_registry_covers_all_kinds(self):
        assert set(EVENT_TYPES) == {e.KIND for e in sample_plan().events}

    def test_tuples_serialize_as_lists(self):
        data = Partition(nodes=(4, 5), start=1, end=2).to_dict()
        assert data["nodes"] == [4, 5]
        assert json.dumps(data)  # JSON-ready without custom encoders

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultEvent.from_dict({"kind": "meteor-strike"})

    def test_bad_fields_rejected(self):
        with pytest.raises(ConfigError, match="bad fields"):
            FaultEvent.from_dict({"kind": "crash", "nonsense": 1})


class TestHash:
    def test_hash_is_stable_across_equal_plans(self):
        assert sample_plan().plan_hash() == sample_plan().plan_hash()

    def test_hash_sees_every_field(self):
        base = FaultPlan("p", (NodeCrash(node=3, start=2, end=6),))
        other = FaultPlan("p", (NodeCrash(node=3, start=2, end=7),))
        renamed = FaultPlan("q", (NodeCrash(node=3, start=2, end=6),))
        assert len({base.plan_hash(), other.plan_hash(), renamed.plan_hash()}) == 3

    def test_hash_ignores_source_dict_key_order(self):
        plan = sample_plan()
        shuffled = json.loads(plan.to_json())
        shuffled["events"] = [
            dict(reversed(list(e.items()))) for e in shuffled["events"]
        ]
        assert FaultPlan.from_dict(shuffled).plan_hash() == plan.plan_hash()


class TestValidation:
    def test_window_must_be_nonempty_and_one_based(self):
        with pytest.raises(ConfigError):
            NodeCrash(node=1, start=0, end=2)
        with pytest.raises(ConfigError):
            NodeCrash(node=1, start=3, end=3)

    def test_base_station_cannot_crash_partition_or_drift(self):
        with pytest.raises(ConfigError):
            NodeCrash(node=0, start=1, end=2)
        with pytest.raises(ConfigError):
            Partition(nodes=(0, 1), start=1, end=2)
        with pytest.raises(ConfigError):
            ClockDrift(node=0, drift=1.0, start=1, end=2)
        with pytest.raises(ConfigError):
            BroadcastLoss(round=1, nodes=(0,))

    def test_partition_needs_distinct_nodes(self):
        with pytest.raises(ConfigError):
            Partition(nodes=(), start=1, end=2)
        with pytest.raises(ConfigError):
            Partition(nodes=(1, 1), start=1, end=2)

    def test_link_down_needs_two_endpoints(self):
        with pytest.raises(ConfigError):
            LinkDown(a=2, b=2, start=1, end=2)

    def test_rates_must_be_proper_probabilities(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigError):
                BurstLoss(loss_rate=bad, start=1, end=2)
            with pytest.raises(ConfigError):
                Duplicate(probability=bad, start=1, end=2)

    def test_broadcast_events_are_one_based(self):
        with pytest.raises(ConfigError):
            BroadcastLoss(round=0)
        with pytest.raises(ConfigError):
            BroadcastDelay(round=0)
        with pytest.raises(ConfigError):
            BroadcastDelay(round=1, extra_rounds=0.0)

    def test_zero_drift_is_rejected_as_noop(self):
        with pytest.raises(ConfigError):
            ClockDrift(node=1, drift=0.0, start=1, end=2)

    def test_plan_needs_name_and_typed_events(self):
        with pytest.raises(ConfigError):
            FaultPlan(name="")
        with pytest.raises(ConfigError):
            FaultPlan(name="p", events=({"kind": "crash"},))  # type: ignore[arg-type]


class TestSemantics:
    def test_window_is_half_open(self):
        event = NodeCrash(node=1, start=3, end=5)
        assert [event.active(t) for t in (2, 3, 4, 5)] == [False, True, True, False]

    def test_partition_blocks_only_crossing_links(self):
        cut = Partition(nodes=(4, 5), start=1, end=2)
        assert cut.blocks(4, 1) and cut.blocks(1, 5)
        assert not cut.blocks(4, 5) and not cut.blocks(1, 2)

    def test_burst_loss_targeting(self):
        assert BurstLoss(receiver=None, loss_rate=0.5, start=1, end=2).applies_to(9)
        targeted = BurstLoss(receiver=3, loss_rate=0.5, start=1, end=2)
        assert targeted.applies_to(3) and not targeted.applies_to(4)

    def test_broadcast_loss_empty_nodes_means_everyone(self):
        assert BroadcastLoss(round=1).applies_to(7)
        assert not BroadcastLoss(round=1, nodes=(3,)).applies_to(7)

    def test_horizon_and_counts(self):
        plan = sample_plan()
        assert plan.horizon() == 9  # the widest window's end
        counts = plan.counts_by_kind()
        assert counts == {kind: 1 for kind in EVENT_TYPES}

    def test_describe_mentions_name_hash_and_kinds(self):
        plan = sample_plan()
        text = plan.describe()
        assert "kitchen-sink" in text
        assert plan.plan_hash()[:12] in text
        for kind in EVENT_TYPES:
            assert kind in text
        assert "empty plan" in FaultPlan(name="nothing").describe()


class TestChaosPresets:
    def test_presets_are_deterministic(self):
        for profile in CHAOS_PROFILES:
            a = chaos_plan(profile, 16, 6, seed=7)
            b = chaos_plan(profile, 16, 6, seed=7)
            assert a == b and a.plan_hash() == b.plan_hash()

    def test_seed_changes_the_plan(self):
        a = chaos_plan("mixed", 16, 6, seed=1)
        b = chaos_plan("mixed", 16, 6, seed=2)
        assert a.plan_hash() != b.plan_hash()

    def test_mixed_profile_covers_many_kinds(self):
        counts = chaos_plan("mixed", 16, 6, seed=3).counts_by_kind()
        assert {
            "crash", "partition", "burst-loss", "duplicate", "clock-drift",
            "broadcast-loss", "broadcast-delay",
        } <= set(counts)

    def test_unknown_profile_and_tiny_network_rejected(self):
        with pytest.raises(ConfigError):
            chaos_plan("locusts", 16, 6, seed=0)
        with pytest.raises(ConfigError):
            chaos_plan("crash", 2, 6, seed=0)
