"""Full-stack scenario matrix: topologies x adversaries x queries.

The broad sanity sweep a release gate would run: every combination must
uphold the three global invariants (safety, correctness-of-results,
progress) — whatever the topology shape, attack and query type."""

from __future__ import annotations

import pytest

from repro import (
    CountQuery,
    MaxQuery,
    MinQuery,
    VMATProtocol,
    build_deployment,
    small_test_config,
)
from repro.adversary import (
    Adversary,
    DropMinimumStrategy,
    JunkMinimumStrategy,
    PassiveStrategy,
    SpuriousVetoStrategy,
)
from repro.topology import cluster_topology, grid_topology, random_geometric_topology
from repro.topology.generators import recommended_radius

from tests.conftest import assert_only_malicious_revoked

TOPOLOGIES = {
    "grid": lambda: (grid_topology(4, 4), 10, {6}),
    "geometric": lambda: (
        random_geometric_topology(24, recommended_radius(24), seed=31),
        8,
        {5},
    ),
    "clusters": lambda: (cluster_topology(3, 5, seed=31), 8, {6}),
}

STRATEGIES = {
    "passive": lambda: PassiveStrategy(),
    "drop": lambda: DropMinimumStrategy(predtest="deny"),
    "junk": lambda: JunkMinimumStrategy(),
    "spurious-veto": lambda: SpuriousVetoStrategy(),
}

QUERIES = {
    "min": lambda: MinQuery(),
    "max": lambda: MaxQuery(),
    "count": lambda: CountQuery(predicate=lambda r: r > 50, num_synopses=40),
}


@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_matrix_invariants(topology_name, strategy_name, query_name):
    topology, depth, malicious = TOPOLOGIES[topology_name]()
    deployment = build_deployment(
        config=small_test_config(depth_bound=depth),
        topology=topology,
        malicious_ids=malicious,
        seed=31,
    )
    adversary = Adversary(deployment.network, STRATEGIES[strategy_name](), seed=31)
    protocol = VMATProtocol(deployment.network, adversary=adversary)
    query = QUERIES[query_name]()
    readings = {i: float(30 + (i * 13) % 60) for i in topology.sensor_ids}

    result = protocol.execute(query, readings)

    # Safety: never any honest collateral.
    assert_only_malicious_revoked(deployment, malicious)
    # Progress: a result or a revocation, never a stall.
    assert result.produced_result or result.revocations
    # Correctness where the query admits exact statements.
    if result.produced_result and query_name in ("min", "max"):
        lo = min(result.overall_true_value, result.honest_true_value)
        hi = max(result.overall_true_value, result.honest_true_value)
        assert lo <= result.estimate <= hi
    if result.produced_result and query_name == "count" and strategy_name == "passive":
        truth = query.true_value(list(readings.values()))
        if truth > 0:
            assert abs(result.estimate - truth) / truth < 0.8


def run_cell(topology_name: str, strategy_name: str, query_name: str):
    """One matrix cell, returning everything observable about the run."""
    topology, depth, malicious = TOPOLOGIES[topology_name]()
    deployment = build_deployment(
        config=small_test_config(depth_bound=depth),
        topology=topology,
        malicious_ids=malicious,
        seed=31,
    )
    adversary = Adversary(deployment.network, STRATEGIES[strategy_name](), seed=31)
    protocol = VMATProtocol(deployment.network, adversary=adversary)
    readings = {i: float(30 + (i * 13) % 60) for i in topology.sensor_ids}
    result = protocol.execute(QUERIES[query_name](), readings)
    return {
        "outcome": result.outcome.value,
        "estimate": result.estimate,
        "revocations": sorted(result.revocations),
        "metrics": deployment.network.metrics.to_dict(),
    }


@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
def test_matrix_bit_identical_with_caches_disabled(strategy_name):
    """The repro.perf caches are observability-free: a full-stack run
    with every cache disabled produces byte-identical outcomes,
    estimates, revocations and metrics (the CI ``matrix-nocache`` leg
    re-runs the whole matrix under REPRO_DISABLE_PERF_CACHES=1 to check
    the env-var path too)."""
    from repro.perf.cache import clear_caches, disabled

    clear_caches()
    warm = run_cell("grid", strategy_name, "min")
    with disabled():
        cold = run_cell("grid", strategy_name, "min")
    assert warm == cold
