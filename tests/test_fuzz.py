"""Tests for :mod:`repro.invariants.fuzz` — the seeded adversary fuzzer.

The fuzzer's contract has three legs, each tested here:

* **determinism** — the trial-th config of a master seed, and the
  violations any config produces, are pure functions of their inputs;
* **soundness on correct code** — a sweep of seeded configs over the
  unmodified protocol raises zero violations (the catalog has no false
  positives on the supported configuration space);
* **sensitivity + repro round-trip** — fuzzing against a planted mutant
  finds a violation, shrinks it to a smaller config that still violates
  the same invariants, and the saved JSON repro replays to exactly the
  recorded violation set.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.invariants import FuzzConfig, fuzz, replay_repro, run_config
from repro.invariants.fuzz import sample_config

#: The mutant used for sensitivity tests: silent-pinpoint breaks *every*
#: pinpointing execution (no revocation ever happens), so any sampled
#: config whose adversary forces a pinpoint trips revocation-progress —
#: the broadest detection surface of the planted set.
SENSITIVITY_MUTANT = "silent-pinpoint"


class TestSampleConfigDeterminism:
    def test_same_inputs_same_config(self) -> None:
        for trial in range(10):
            assert sample_config(0, trial) == sample_config(0, trial)

    def test_trials_differ(self) -> None:
        configs = {sample_config(0, trial) for trial in range(10)}
        assert len(configs) > 1

    def test_master_seeds_differ(self) -> None:
        assert sample_config(0, 0) != sample_config(1, 0) or (
            sample_config(0, 1) != sample_config(1, 1)
        )

    def test_sampled_configs_valid(self) -> None:
        for trial in range(10):
            config = sample_config(0, trial)
            topology = config.build_topology()
            assert all(m in topology.sensor_ids for m in config.malicious)
            assert config.depth_bound() >= 1


class TestFuzzConfigRoundTrip:
    def test_json_round_trip(self) -> None:
        config = sample_config(3, 5)
        data = json.loads(json.dumps(config.to_dict()))
        assert FuzzConfig.from_dict(data) == config

    def test_key_reordering_stable(self) -> None:
        config = sample_config(3, 5)
        data = config.to_dict()
        reordered = dict(reversed(list(data.items())))
        assert FuzzConfig.from_dict(reordered) == config

    def test_unknown_field_rejected(self) -> None:
        data = sample_config(3, 5).to_dict()
        data["frobnicate"] = True
        with pytest.raises(ReproError, match="unknown FuzzConfig fields"):
            FuzzConfig.from_dict(data)

    def test_unknown_mutant_rejected(self) -> None:
        with pytest.raises(ReproError, match="unknown mutant"):
            run_config(sample_config(0, 0), mutant="nonexistent")


class TestRunConfigDeterminism:
    def test_repeat_runs_identical(self) -> None:
        config = FuzzConfig(seed=11, topology="line", size=6, malicious=(3,),
                            strategy="junk-minimum", executions=2)
        first = [v.to_dict() for v in run_config(config)]
        second = [v.to_dict() for v in run_config(config)]
        assert first == second

    def test_mutant_runs_identical(self) -> None:
        config = FuzzConfig(seed=11, topology="line", size=5, malicious=(2,),
                            strategy="spurious-veto", executions=1)
        first = [v.to_dict() for v in run_config(config, mutant=SENSITIVITY_MUTANT)]
        second = [v.to_dict() for v in run_config(config, mutant=SENSITIVITY_MUTANT)]
        assert first == second
        assert first, "silent-pinpoint under a spurious veto must violate"


class TestFuzzCleanOnCorrectCode:
    def test_seeded_sweep_clean(self) -> None:
        report = fuzz(master_seed=0, trials=6)
        assert report.configs_run == 6
        assert report.clean, [
            (t, c.to_dict(), [str(v) for v in vs])
            for t, c, vs in report.findings
        ]


class TestFuzzFindsMutant:
    def test_finds_shrinks_and_replays(self, tmp_path) -> None:
        report = fuzz(
            master_seed=0,
            trials=5,
            mutant=SENSITIVITY_MUTANT,
            repro_dir=tmp_path,
        )
        assert not report.clean, "planted mutant survived the fuzz sweep"
        assert report.repro_paths
        trial, shrunk, violations = report.findings[0]
        original = sample_config(0, trial)
        violated = {v.invariant for v in violations}
        assert "revocation-progress" in violated

        # Shrinking never grows the config and preserves the violation.
        assert shrunk.size <= original.size
        assert len(shrunk.malicious) <= len(original.malicious)
        assert shrunk.executions <= original.executions
        replayed = {v.invariant for v in run_config(shrunk, mutant=SENSITIVITY_MUTANT)}
        assert violated <= replayed

        # The saved repro file replays deterministically.
        path = report.repro_paths[0]
        got, expected = replay_repro(path)
        assert expected
        assert set(expected) <= {v.invariant for v in got}

        # And it documents the mutant that produced it.
        data = json.loads(open(path).read())
        assert data["mutant"] == SENSITIVITY_MUTANT
        assert data["version"] == 1

    def test_replay_rejects_future_versions(self, tmp_path) -> None:
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": 999,
            "config": sample_config(0, 0).to_dict(),
            "violated": [],
        }))
        with pytest.raises(ReproError, match="unsupported repro version"):
            replay_repro(path)
