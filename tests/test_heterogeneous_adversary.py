"""Heterogeneous (per-node) adversaries: different playbooks at once."""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import (
    Adversary,
    DropMinimumStrategy,
    PerNodeStrategy,
    SpuriousVetoStrategy,
)
from repro.topology import grid_topology

from tests.conftest import assert_only_malicious_revoked


def combined_scenario(seed=14):
    """A dropper fencing the far corner plus a choker at the base
    station's elbow — the drop creates the veto, the choker races it."""
    dep = build_deployment(
        config=small_test_config(depth_bound=10),
        topology=grid_topology(4, 4),
        malicious_ids={1, 11, 14},
        seed=seed,
    )
    strategy = PerNodeStrategy(
        {
            11: DropMinimumStrategy(predtest="deny"),
            14: DropMinimumStrategy(predtest="deny"),
            1: SpuriousVetoStrategy(),
        }
    )
    adv = Adversary(dep.network, strategy, seed=seed)
    protocol = VMATProtocol(dep.network, adversary=adv)
    readings = {i: 60.0 + i for i in dep.topology.sensor_ids}
    readings[15] = 1.0
    return dep, protocol, readings


class TestPerNodeStrategy:
    def test_unassigned_nodes_default_to_passive(self):
        dep = build_deployment(num_nodes=20, seed=14, malicious_ids={3, 7})
        strategy = PerNodeStrategy({3: DropMinimumStrategy()})
        adv = Adversary(dep.network, strategy, seed=14)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 60.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        # Node 7 mimicked honestly; whatever node 3 did, safety holds.
        assert_only_malicious_revoked(dep, {3, 7})
        assert result.produced_result or result.revocations

    def test_combined_attack_still_pays_every_round(self):
        dep, protocol, readings = combined_scenario()
        result = protocol.execute(MinQuery(), readings)
        # The drop guarantees SOME veto (valid or the choker's junk);
        # either path revokes adversary material.
        assert result.outcome in (
            ExecutionOutcome.VETO_PINPOINT,
            ExecutionOutcome.JUNK_CONFIRMATION_PINPOINT,
        )
        assert result.revocations
        assert_only_malicious_revoked(dep, {1, 11, 14})

    def test_combined_attack_session_terminates(self):
        dep, protocol, readings = combined_scenario()
        session = protocol.run_session(MinQuery(), readings, max_executions=400)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {1, 11, 14})

    def test_shared_strategy_instance_bound_once(self):
        dep = build_deployment(num_nodes=20, seed=14, malicious_ids={3, 7})
        shared = DropMinimumStrategy()
        strategy = PerNodeStrategy({3: shared, 7: shared})
        assert strategy._all_strategies().count(shared) == 1
