"""Tests for :mod:`repro.invariants` — catalog, monitor, offline, mutants.

Three layers:

* unit tests of each catalog invariant against synthetic
  :class:`ExecutionView` snapshots (every rule has a passing and a
  failing view, including the reachable-honest-component subtleties);
* integration tests running the online :class:`InvariantMonitor` over
  honest and attacked sessions (which must stay clean on correct code),
  plus save/reload parity with the offline trace checker;
* the mutation smoke-check: every deliberately weakened protocol
  variant must be flagged by at least one expected invariant while its
  unpatched baseline stays clean — the catalog's own regression test.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, make_strategy
from repro.campaign import ResultStore
from repro.errors import ReproError
from repro.invariants import (
    EXECUTION_INVARIANTS,
    STORE_INVARIANTS,
    AggregateErrorBound,
    ChaosBenignSafety,
    ExecutionView,
    Fig7ThetaMonotonicity,
    Fig8SynopsisErrorBound,
    HonestNodeSafety,
    InvariantMonitor,
    InvariantViolationError,
    PositiveProofRevocation,
    RevocationProgress,
    RoundsConstantBound,
    StoreSeedDerivation,
    check_execution,
    check_run,
    check_store,
    check_trace_file,
    classify_reason,
    mutation_smoke,
)
from repro.topology import line_topology
from repro.tracing import TraceEvent, Tracer

STORES_CI = Path(__file__).resolve().parent.parent / "stores" / "ci"


def make_view(**overrides) -> ExecutionView:
    """A clean baseline view; tests override what they attack."""
    defaults = dict(
        query="min",
        outcome="result",
        depth_bound=9,
        instances=1,
        malicious=frozenset(),
        faults_active=False,
        adversary_active=False,
        estimate=1.0,
        honest_true=1.0,
        overall_true=1.0,
        reachable_honest_true=1.0,
        reachable_honest_count=9,
    )
    defaults.update(overrides)
    return ExecutionView(**defaults)


def revocation(what: str, target: int, reason: str) -> dict:
    return {"kind": "revocation", "what": what, "target": target, "reason": reason}


# ----------------------------------------------------------------------
# Reason classification
# ----------------------------------------------------------------------
class TestClassifyReason:
    @pytest.mark.parametrize("reason", [
        "claimed interval-L receipt",
        "originated junk at max level",
        "originated spurious veto",
    ])
    def test_positive(self, reason: str) -> None:
        assert classify_reason(reason) == "positive"

    @pytest.mark.parametrize("reason", [
        "refused Figure-5 search",
        "no consistent admitter (Figure 6)",
        "nobody admits forwarding junk veto",
    ])
    def test_absence(self, reason: str) -> None:
        assert classify_reason(reason) == "absence"

    @pytest.mark.parametrize("reason", [
        "ring of sensor 4",
        "threshold theta=3 reached",
    ])
    def test_structural(self, reason: str) -> None:
        assert classify_reason(reason) == "structural"

    def test_unknown(self) -> None:
        assert classify_reason("because I felt like it") == "unknown"


# ----------------------------------------------------------------------
# Catalog invariants on synthetic views
# ----------------------------------------------------------------------
class TestHonestNodeSafety:
    inv = HonestNodeSafety()

    def test_malicious_sensor_revocation_is_fine(self) -> None:
        view = make_view(
            outcome="veto-pinpoint",
            malicious=frozenset({4}),
            adversary_active=True,
            revocations=(revocation("sensor", 4, "originated spurious veto"),),
        )
        assert self.inv.check(view) == []

    def test_honest_sensor_revocation_flagged(self) -> None:
        view = make_view(
            outcome="veto-pinpoint",
            malicious=frozenset({4}),
            adversary_active=True,
            revocations=(revocation("sensor", 5, "originated spurious veto"),),
        )
        found = self.inv.check(view)
        assert len(found) == 1
        assert "honest sensor 5" in found[0].detail

    def test_key_revocation_without_adversary_flagged(self) -> None:
        view = make_view(
            outcome="junk-aggregation-pinpoint",
            revocations=(revocation("key", 12, "nobody admits forwarding junk"),),
        )
        assert any(
            "no adversary" in v.detail for v in self.inv.check(view)
        )


class TestPositiveProofRevocation:
    inv = PositiveProofRevocation()

    def test_unknown_reason_flagged(self) -> None:
        view = make_view(
            outcome="veto-pinpoint",
            revocations=(revocation("sensor", 4, "vibes"),),
        )
        assert any("unrecognized" in v.detail for v in self.inv.check(view))

    def test_absence_reason_under_faults_flagged(self) -> None:
        view = make_view(
            outcome="junk-aggregation-pinpoint",
            faults_active=True,
            revocations=(revocation("key", 3, "refused Figure-5 search"),),
        )
        assert any("benign mode must defer" in v.detail for v in self.inv.check(view))

    def test_absence_reason_without_faults_is_fine(self) -> None:
        view = make_view(
            outcome="junk-aggregation-pinpoint",
            revocations=(revocation("key", 3, "refused Figure-5 search"),),
        )
        assert self.inv.check(view) == []

    def test_positive_reason_under_faults_is_fine(self) -> None:
        view = make_view(
            outcome="veto-pinpoint",
            faults_active=True,
            revocations=(revocation("sensor", 4, "originated spurious veto"),),
        )
        assert self.inv.check(view) == []

    def test_result_with_revocations_flagged(self) -> None:
        view = make_view(
            outcome="result",
            revocations=(revocation("sensor", 4, "originated spurious veto"),),
        )
        assert any("produced a result" in v.detail for v in self.inv.check(view))


class TestRevocationProgress:
    inv = RevocationProgress()

    def test_result_is_fine(self) -> None:
        assert self.inv.check(make_view(outcome="result")) == []

    def test_inconclusive_without_faults_flagged(self) -> None:
        view = make_view(outcome="inconclusive", inconclusive_reason="timeout")
        assert any("inconclusive" in v.detail for v in self.inv.check(view))

    def test_inconclusive_under_faults_allowed(self) -> None:
        view = make_view(
            outcome="inconclusive", faults_active=True, inconclusive_reason="timeout"
        )
        assert self.inv.check(view) == []

    def test_pinpoint_without_revocation_flagged(self) -> None:
        view = make_view(outcome="veto-pinpoint", revocations=())
        assert any("without revoking" in v.detail for v in self.inv.check(view))

    def test_pinpoint_with_revocation_is_fine(self) -> None:
        view = make_view(
            outcome="veto-pinpoint",
            revocations=(revocation("sensor", 4, "originated spurious veto"),),
        )
        assert self.inv.check(view) == []


class TestAggregateErrorBound:
    inv = AggregateErrorBound()

    def test_exact_min_result_is_fine(self) -> None:
        view = make_view(estimate=1.0, honest_true=1.0, overall_true=0.5,
                         reachable_honest_true=1.0)
        assert self.inv.check(view) == []

    def test_min_above_reachable_honest_flagged(self) -> None:
        view = make_view(estimate=7.0, honest_true=1.0, overall_true=0.5,
                         reachable_honest_true=1.0)
        assert any("escapes" in v.detail for v in self.inv.check(view))

    def test_min_below_every_reading_flagged(self) -> None:
        view = make_view(estimate=0.1, honest_true=1.0, overall_true=0.5)
        assert any("escapes" in v.detail for v in self.inv.check(view))

    def test_reachable_fallback_loosens_bound(self) -> None:
        # Honest minimum owner got disconnected by an earlier revocation:
        # the result may legitimately exceed honest_true, up to the
        # reachable honest minimum.
        view = make_view(estimate=101.0, honest_true=1.0, overall_true=1.0,
                         reachable_honest_true=101.0, reachable_honest_count=3)
        assert self.inv.check(view) == []

    def test_zero_reachable_honest_skips(self) -> None:
        # Every honest sensor stranded: the result promises nothing.
        view = make_view(estimate=float("inf"), honest_true=1.0, overall_true=1.0,
                         reachable_honest_true=None, reachable_honest_count=0)
        assert self.inv.check(view) == []

    def test_max_mirrored(self) -> None:
        good = make_view(query="max", estimate=9.0, honest_true=9.0,
                         overall_true=12.0, reachable_honest_true=9.0)
        assert self.inv.check(good) == []
        bad = make_view(query="max", estimate=5.0, honest_true=9.0,
                        overall_true=12.0, reachable_honest_true=9.0)
        assert any("MAX" in v.detail for v in self.inv.check(bad))

    def test_faulty_executions_skip(self) -> None:
        view = make_view(estimate=50.0, honest_true=1.0, overall_true=1.0,
                         faults_active=True)
        assert self.inv.check(view) == []

    def test_synopsis_within_envelope_is_fine(self) -> None:
        view = make_view(query="count", instances=64, estimate=100.0,
                         honest_true=100.0, overall_true=100.0)
        assert self.inv.check(view) == []

    def test_synopsis_gross_error_flagged(self) -> None:
        view = make_view(query="count", instances=64, estimate=500.0,
                         honest_true=100.0, overall_true=100.0)
        assert any("relative error" in v.detail for v in self.inv.check(view))


class TestOnlineOnlyInvariantsSkipOffline:
    def test_network_free_view_runs_clean(self) -> None:
        # Clock/broadcast/edge-MAC checks need live state; a view built
        # from a trace file alone must not trip them.
        view = make_view(network=None)
        assert check_execution(view) == []

    def test_catalog_names_unique(self) -> None:
        names = [inv.name for inv in EXECUTION_INVARIANTS] + [
            inv.name for inv in STORE_INVARIANTS
        ]
        assert len(names) == len(set(names))
        assert all(inv.section for inv in EXECUTION_INVARIANTS)


# ----------------------------------------------------------------------
# Online monitor over real sessions
# ----------------------------------------------------------------------
def run_monitored_session(malicious=frozenset(), strategy=None, executions=3,
                          seed=7):
    topology = line_topology(10)
    deployment = build_deployment(
        config=small_test_config(depth_bound=12),
        topology=topology,
        malicious_ids=set(malicious),
        seed=seed,
    )
    network = deployment.network
    adversary = None
    if malicious:
        adversary = Adversary(network, make_strategy(strategy, "truthful"), seed=seed)
    protocol = VMATProtocol(network, adversary=adversary)
    tracer = Tracer.attach(network)
    monitor = InvariantMonitor.attach(tracer, network)
    readings = {i: 100.0 + i for i in topology.sensor_ids}
    readings[7] = 1.0
    outcomes = []
    for _ in range(executions):
        outcomes.append(protocol.execute(MinQuery(), readings).outcome.value)
    monitor.check_now()
    monitor.detach()
    return tracer, monitor, outcomes


class TestInvariantMonitor:
    def test_honest_session_clean(self) -> None:
        tracer, monitor, outcomes = run_monitored_session()
        assert outcomes == ["result"] * 3
        assert monitor.executions_checked == 3
        assert monitor.violations == []

    def test_attacked_session_clean_on_correct_code(self) -> None:
        _, monitor, outcomes = run_monitored_session(
            malicious={4}, strategy="junk-minimum"
        )
        assert monitor.violations == []
        assert monitor.executions_checked == 3
        # The attack was actually exercised: at least one pinpoint ran.
        assert any(o != "result" for o in outcomes)

    def test_detach_stops_observation(self) -> None:
        tracer, monitor, _ = run_monitored_session(executions=1)
        checked = monitor.executions_checked
        tracer.record("execution-start", query="min", depth_bound=9)
        tracer.record("execution-end", outcome="inconclusive")
        monitor.check_now()
        assert monitor.executions_checked == checked

    def test_raise_mode(self) -> None:
        monitor = InvariantMonitor(on_violation="raise")
        monitor.on_event(TraceEvent(0, "execution-start", {"query": "min"}))
        monitor.on_event(TraceEvent(1, "execution-end", {"outcome": "inconclusive"}))
        with pytest.raises(InvariantViolationError) as excinfo:
            monitor.check_now()
        assert any(
            v.invariant == "revocation-progress" for v in excinfo.value.violations
        )

    def test_rejects_bad_mode(self) -> None:
        with pytest.raises(ReproError):
            InvariantMonitor(on_violation="ignore")


class TestOfflineTraceParity:
    def test_saved_trace_checks_identically(self, tmp_path) -> None:
        tracer, monitor, _ = run_monitored_session(
            malicious={4}, strategy="spurious-veto"
        )
        path = tmp_path / "session.jsonl"
        tracer.save(path)
        checked, violations = check_trace_file(path)
        assert checked == monitor.executions_checked
        assert violations == []


# ----------------------------------------------------------------------
# Store-scope invariants
# ----------------------------------------------------------------------
class _FakeSpec:
    seed = 7


def record_for(scenario: str, metrics: dict, params: dict, seed=None) -> dict:
    from repro.campaign.spec import derive_cell_seed

    return {
        "scenario": scenario,
        "cell_id": f"{scenario}-test",
        "params": params,
        "metrics": metrics,
        "status": "ok",
        "seed": seed if seed is not None
        else derive_cell_seed(_FakeSpec.seed, scenario, params),
    }


class TestStoreInvariants:
    def test_seed_derivation_mismatch_flagged(self) -> None:
        record = record_for("chaos", {}, {"executions": 2}, seed=12345)
        found = StoreSeedDerivation().check_record(_FakeSpec(), record)
        assert len(found) == 1

    def test_chaos_revocation_flagged(self) -> None:
        record = record_for(
            "chaos",
            {"revocations": 1.0, "results_produced": 1.0, "inconclusive": 1.0},
            {"executions": 2},
        )
        found = ChaosBenignSafety().check_record(_FakeSpec(), record)
        assert any("revocations" in v.detail for v in found)

    def test_chaos_unaccounted_execution_flagged(self) -> None:
        record = record_for(
            "chaos",
            {"revocations": 0.0, "results_produced": 1.0, "inconclusive": 0.0},
            {"executions": 2},
        )
        found = ChaosBenignSafety().check_record(_FakeSpec(), record)
        assert any("accounts for" in v.detail for v in found)

    def test_fig7_monotonicity_flagged(self) -> None:
        record = record_for(
            "fig7",
            {"misrevoked_at_theta_max": 2.0, "misrevoked_at_theta_1": 1.0,
             "safe_theta": 3.0},
            {"theta_max": 12},
        )
        found = Fig7ThetaMonotonicity().check_record(_FakeSpec(), record)
        assert len(found) == 1

    def test_fig7_safe_theta_sentinel_ok(self) -> None:
        record = record_for(
            "fig7",
            {"misrevoked_at_theta_max": 0.0, "misrevoked_at_theta_1": 1.0,
             "safe_theta": -1.0},
            {"theta_max": 12},
        )
        assert Fig7ThetaMonotonicity().check_record(_FakeSpec(), record) == []

    def test_fig8_unordered_percentiles_flagged(self) -> None:
        record = record_for(
            "fig8",
            {"avg_rel_error": 0.05, "p50_rel_error": 0.2, "p90_rel_error": 0.1,
             "p99_rel_error": 0.3},
            {"synopses": 64},
        )
        found = Fig8SynopsisErrorBound().check_record(_FakeSpec(), record)
        assert any("unordered" in v.detail for v in found)

    def test_rounds_bound_flagged(self) -> None:
        record = record_for("rounds", {"vmat_rounds": 40.0}, {"nodes": 30})
        found = RoundsConstantBound().check_record(_FakeSpec(), record)
        assert len(found) == 1

    def test_skips_failed_records(self) -> None:
        record = record_for("rounds", {"vmat_rounds": 40.0}, {"nodes": 30})
        record["status"] = "error"
        assert not RoundsConstantBound().applies_to(record)
        # ... but seed integrity still applies to failed cells.
        assert StoreSeedDerivation().applies_to(record)


class TestCommittedStores:
    def test_ci_stores_pass_catalog(self) -> None:
        store = ResultStore(STORES_CI)
        results = check_store(store)
        assert len(results) >= 4
        scenarios = set()
        for run_id, (records, violations) in results.items():
            assert violations == [], f"{run_id}: {[str(v) for v in violations]}"
            assert records > 0
            scenarios.update(
                r["scenario"] for r in store.get_run(run_id).load_results()
            )
        assert {"chaos", "fig7", "fig8", "rounds"} <= scenarios

    def test_check_run_reports_tampering(self, tmp_path) -> None:
        import json
        import shutil

        store = ResultStore(STORES_CI)
        run = store.list_runs()[0]
        copy_root = tmp_path / "store"
        shutil.copytree(STORES_CI, copy_root)
        run_dir = copy_root / run.run_id
        results_file = run_dir / "results.jsonl"
        lines = results_file.read_text().splitlines()
        record = json.loads(lines[0])
        record["seed"] = record["seed"] + 1
        lines[0] = json.dumps(record)
        results_file.write_text("\n".join(lines) + "\n")
        tampered = ResultStore(copy_root).get_run(run.run_id)
        _, violations = check_run(tampered)
        assert violations, "tampered seed must be detected"


# ----------------------------------------------------------------------
# Mutation smoke-check
# ----------------------------------------------------------------------
class TestMutationSmoke:
    def test_every_mutant_caught(self) -> None:
        reports = mutation_smoke(seed=7)
        assert len(reports) == 6
        for report in reports:
            assert report.baseline_clean, (
                f"{report.name}: baseline provocation was dirty"
            )
            assert report.caught, (
                f"{report.name}: weakened protocol survived the catalog "
                f"(expected {report.expected}, outcomes {report.outcomes})"
            )
