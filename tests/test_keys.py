"""Key pool, rings, registry: Eschenauer–Gligor pre-distribution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KeyConfig, RevocationConfig
from repro.errors import KeyManagementError
from repro.keys import KeyPool, KeyRegistry, KeyRing, ring_seed

CFG = KeyConfig(pool_size=200, ring_size=40)


@pytest.fixture
def pool():
    return KeyPool(b"master", CFG)


@pytest.fixture
def registry():
    return KeyRegistry(b"master", num_nodes=12, key_config=CFG,
                       revocation_config=RevocationConfig(theta=5))


class TestKeyPool:
    def test_pool_keys_deterministic_and_distinct(self, pool):
        assert pool.pool_key(3) == pool.pool_key(3)
        assert pool.pool_key(3) != pool.pool_key(4)

    def test_sensor_keys_distinct_from_pool_keys(self, pool):
        assert pool.sensor_key(3) != pool.pool_key(3)

    def test_key_length(self, pool):
        assert len(pool.pool_key(0)) == CFG.key_length

    def test_rejects_out_of_range_index(self, pool):
        with pytest.raises(KeyManagementError):
            pool.pool_key(CFG.pool_size)
        with pytest.raises(KeyManagementError):
            pool.pool_key(-1)

    def test_rejects_empty_master(self):
        with pytest.raises(KeyManagementError):
            KeyPool(b"", CFG)


class TestKeyRing:
    def test_ring_selection_from_seed(self, pool):
        ring = KeyRing(1, ring_seed(b"master", 1), pool)
        assert len(ring) == CFG.ring_size
        assert list(ring.indices) == sorted(set(ring.indices))

    def test_same_seed_same_ring(self, pool):
        a = KeyRing(1, ring_seed(b"master", 1), pool)
        b = KeyRing(99, ring_seed(b"master", 1), pool)
        assert a.indices == b.indices

    def test_different_sensors_different_rings(self, pool):
        a = KeyRing(1, ring_seed(b"master", 1), pool)
        b = KeyRing(2, ring_seed(b"master", 2), pool)
        assert a.indices != b.indices

    def test_holds_and_key_access(self, pool):
        ring = KeyRing(1, ring_seed(b"master", 1), pool)
        index = ring.indices[0]
        assert ring.holds(index)
        assert ring.key(index) == pool.pool_key(index)

    def test_key_access_denied_outside_ring(self, pool):
        ring = KeyRing(1, ring_seed(b"master", 1), pool)
        outside = next(i for i in range(CFG.pool_size) if i not in ring)
        with pytest.raises(KeyManagementError):
            ring.key(outside)

    def test_shared_indices_symmetric(self, pool):
        a = KeyRing(1, ring_seed(b"master", 1), pool)
        b = KeyRing(2, ring_seed(b"master", 2), pool)
        assert a.shared_indices(b) == b.shared_indices(a)
        for index in a.shared_indices(b):
            assert index in a and index in b

    def test_rank_of(self, pool):
        ring = KeyRing(1, ring_seed(b"master", 1), pool)
        assert ring.rank_of(ring.indices[5]) == 5


class TestKeyRegistry:
    def test_holders_consistent_with_rings(self, registry):
        for index in registry.ring(1).indices:
            assert 1 in registry.holders(index)

    def test_holders_sorted(self, registry):
        index = registry.ring(1).indices[0]
        holders = registry.holders(index)
        assert list(holders) == sorted(holders)

    def test_node_holds_base_station_holds_all(self, registry):
        assert registry.node_holds(0, 123)

    def test_edge_key_is_lowest_shared(self, registry):
        shared = registry.shared_key_indices(1, 2)
        if shared:
            assert registry.edge_key_index(1, 2) == shared[0]

    def test_edge_key_with_base_station_uses_sensor_ring(self, registry):
        assert registry.edge_key_index(0, 3) == registry.ring(3).indices[0]

    def test_edge_key_skips_revoked(self, registry):
        shared = registry.shared_key_indices(1, 2)
        assert len(shared) >= 2, "test config should give many shared keys"
        registry.revoke_key(shared[0])
        assert registry.edge_key_index(1, 2) == shared[1]

    def test_link_unusable_when_endpoint_revoked(self, registry):
        assert registry.link_usable(1, 2)
        registry.revoke_sensor(2)
        assert not registry.link_usable(1, 2)

    def test_link_unusable_when_all_shared_keys_revoked(self, registry):
        for index in registry.shared_key_indices(0, 1):
            registry.revocation._apply_key(index, exposed=False)  # bypass θ noise
        assert registry.edge_key_index(0, 1) is None
        assert not registry.link_usable(0, 1)

    def test_no_edge_key_with_self(self, registry):
        with pytest.raises(KeyManagementError):
            registry.edge_key_index(3, 3)

    def test_deployment_material_matches_registry(self, registry):
        material = registry.sensor_deployment_material(4)
        assert material.sensor_key == registry.sensor_key(4)
        assert material.ring_indices == registry.ring(4).indices
        for index in material.ring_indices:
            assert material.key(index) == registry.pool_key(index)

    def test_material_denies_unheld_keys(self, registry):
        material = registry.sensor_deployment_material(4)
        outside = next(i for i in range(CFG.pool_size) if not material.holds(i))
        with pytest.raises(KeyManagementError):
            material.key(outside)

    def test_rejects_tiny_deployment(self):
        with pytest.raises(KeyManagementError):
            KeyRegistry(b"m", num_nodes=1, key_config=CFG)

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(1, 11), b=st.integers(1, 11))
    def test_edge_key_symmetric(self, a, b):
        # Fresh, unmutated registry (module-level cache) — hypothesis
        # forbids function-scoped fixtures.
        registry = _symmetry_registry()
        if a != b:
            assert registry.edge_key_index(a, b) == registry.edge_key_index(b, a)


_SYMMETRY_REGISTRY = None


def _symmetry_registry():
    global _SYMMETRY_REGISTRY
    if _SYMMETRY_REGISTRY is None:
        _SYMMETRY_REGISTRY = KeyRegistry(b"master", num_nodes=12, key_config=CFG)
    return _SYMMETRY_REGISTRY
