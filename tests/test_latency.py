"""Latency analysis (seconds, from rounds + interval structure)."""

from __future__ import annotations

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy
from repro.analysis import (
    execution_latency,
    session_latency,
    theta_neutralization_sweep,
)
from repro.config import ClockConfig
from repro.errors import ConfigError
from repro.topology import line_topology

CLOCK = ClockConfig(interval_length=1.0)


class TestExecutionLatency:
    def test_happy_path_latency(self):
        dep = build_deployment(num_nodes=15, seed=2)
        protocol = VMATProtocol(dep.network)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        latency = execution_latency(result, dep.config.protocol.depth_bound, CLOCK)
        assert latency.pinpointing_seconds == 0.0
        assert latency.total_seconds == pytest.approx(
            6 * dep.config.protocol.depth_bound
        )

    def test_attacked_execution_adds_pinpointing_time(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=2,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=2)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        result = protocol.execute(MinQuery(), readings)
        latency = execution_latency(result, 12, CLOCK)
        assert latency.pinpointing_seconds == pytest.approx(
            result.pinpoint.tests_run * 2 * 12
        )
        assert latency.total_seconds > latency.happy_path_seconds

    def test_session_latency_sums_executions(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=2,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=2)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        session = protocol.run_session(MinQuery(), readings, max_executions=60)
        total = session_latency(session, 12, CLOCK)
        parts = [execution_latency(e, 12, CLOCK) for e in session.executions]
        assert total.total_seconds == pytest.approx(
            sum(p.total_seconds for p in parts)
        )


class TestThetaSweep:
    def test_smaller_theta_is_faster(self):
        points = theta_neutralization_sweep([3, 12], clock=CLOCK)
        assert points[0].seconds < points[1].seconds
        assert points[0].executions < points[1].executions

    def test_all_points_neutralize(self):
        points = theta_neutralization_sweep([3, 6], clock=CLOCK)
        assert all(p.attacker_fully_revoked for p in points)

    def test_rejects_bad_theta(self):
        with pytest.raises(ConfigError):
            theta_neutralization_sweep([0])
