"""Residual link loss (extension; the paper's footnote on multipath).

The paper assumes reliable links after retransmission, noting that
"since VMAT supports synopsis-diffusion style multi-path aggregation,
we expect the effect of message losses to be minimum".  These tests
quantify that: under moderate residual loss, multipath aggregation
keeps delivering the minimum far more often than single-path, and zero
loss reproduces the reliable model bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.topology import grid_topology


def deploy(loss_rate, multipath, seed):
    config = replace(
        small_test_config(depth_bound=10),
        network=NetworkConfig(multipath=multipath, loss_rate=loss_rate),
    )
    return build_deployment(
        config=config, topology=grid_topology(4, 4), seed=seed
    )


def min_delivered(loss_rate, multipath, seed) -> bool:
    dep = deploy(loss_rate, multipath, seed)
    protocol = VMATProtocol(dep.network)
    readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
    readings[15] = 1.0
    result = protocol.execute(MinQuery(), readings)
    return bool(result.produced_result and result.estimate == 1.0)


class TestLossModel:
    def test_config_rejects_invalid_rate(self):
        with pytest.raises(ConfigError):
            NetworkConfig(loss_rate=1.0)
        with pytest.raises(ConfigError):
            NetworkConfig(loss_rate=-0.1)

    def test_zero_loss_is_the_reliable_model(self):
        dep = deploy(0.0, multipath=False, seed=2)
        protocol = VMATProtocol(dep.network)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert dep.network.metrics.messages_lost == 0

    def test_losses_are_counted(self):
        dep = deploy(0.3, multipath=False, seed=2)
        protocol = VMATProtocol(dep.network)
        readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        assert dep.network.metrics.messages_lost > 0

    def test_loss_is_deterministic_given_seed(self):
        results = [min_delivered(0.15, True, seed=9) for _ in range(2)]
        assert results[0] == results[1]

    def test_multipath_beats_single_path_under_loss(self):
        """The footnote's claim, measured over seeds."""
        seeds = range(20)
        loss = 0.12
        single = sum(min_delivered(loss, False, s) for s in seeds)
        multi = sum(min_delivered(loss, True, s) for s in seeds)
        assert multi > single
        assert multi >= len(list(seeds)) * 0.7

    def test_guarantees_hold_when_loss_spares_the_control_plane(self):
        """Even with data loss, any *returned* result remains within the
        Theorem 2 bounds whenever a veto made it through."""
        for seed in range(10):
            dep = deploy(0.1, True, seed)
            protocol = VMATProtocol(dep.network)
            readings = {i: 30.0 + i for i in dep.topology.sensor_ids}
            readings[15] = 1.0
            result = protocol.execute(MinQuery(), readings)
            if result.produced_result:
                # With no adversary the only failure mode is loss; the
                # estimate is the minimum of what ARRIVED, never junk.
                assert result.estimate >= 1.0
