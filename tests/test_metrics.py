"""Metrics accounting."""

from __future__ import annotations

from repro.metrics import Metrics


class TestMetrics:
    def test_transmission_recording(self):
        metrics = Metrics()
        metrics.record_transmission(1, 2, 100)
        metrics.record_transmission(2, 1, 50)
        assert metrics.bytes_sent[1] == 100
        assert metrics.bytes_received[1] == 50
        assert metrics.node_communication(1) == 150
        assert metrics.total_bytes() == 150
        assert metrics.total_messages() == 2

    def test_flooding_round_log(self):
        metrics = Metrics()
        metrics.record_flooding_rounds(1.0, "tree")
        metrics.record_authenticated_broadcast()
        assert metrics.flooding_rounds == 2.0
        assert metrics.authenticated_broadcasts == 1
        assert [label for label, _ in metrics.round_log] == [
            "tree", "authenticated-broadcast",
        ]

    def test_predicate_test_costs_two_rounds(self):
        metrics = Metrics()
        metrics.record_predicate_test()
        assert metrics.flooding_rounds == 2.0
        assert metrics.predicate_tests == 1

    def test_max_node_communication(self):
        metrics = Metrics()
        metrics.record_transmission(1, 2, 10)
        metrics.record_transmission(3, 2, 99)
        assert metrics.max_node_communication([1, 2, 3]) == 109  # node 2 rx both
        assert metrics.max_node_communication([]) == 0

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.record_transmission(1, 2, 10)
        b.record_transmission(1, 2, 5)
        b.record_flooding_rounds(3.0, "x")
        b.predicate_tests = 2
        a.merge(b)
        assert a.bytes_sent[1] == 15
        assert a.flooding_rounds == 3.0
        assert a.predicate_tests == 2

    def test_summary_keys(self):
        summary = Metrics().summary()
        assert {"total_bytes", "flooding_rounds", "predicate_tests"} <= set(summary)
