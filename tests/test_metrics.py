"""Metrics accounting."""

from __future__ import annotations

from repro.metrics import Metrics


class TestMetrics:
    def test_transmission_recording(self):
        metrics = Metrics()
        metrics.record_transmission(1, 2, 100)
        metrics.record_transmission(2, 1, 50)
        assert metrics.bytes_sent[1] == 100
        assert metrics.bytes_received[1] == 50
        assert metrics.node_communication(1) == 150
        assert metrics.total_bytes() == 150
        assert metrics.total_messages() == 2

    def test_flooding_round_log(self):
        metrics = Metrics()
        metrics.record_flooding_rounds(1.0, "tree")
        metrics.record_authenticated_broadcast()
        assert metrics.flooding_rounds == 2.0
        assert metrics.authenticated_broadcasts == 1
        assert [label for label, _ in metrics.round_log] == [
            "tree", "authenticated-broadcast",
        ]

    def test_predicate_test_costs_two_rounds(self):
        metrics = Metrics()
        metrics.record_predicate_test()
        assert metrics.flooding_rounds == 2.0
        assert metrics.predicate_tests == 1

    def test_max_node_communication(self):
        metrics = Metrics()
        metrics.record_transmission(1, 2, 10)
        metrics.record_transmission(3, 2, 99)
        assert metrics.max_node_communication([1, 2, 3]) == 109  # node 2 rx both
        assert metrics.max_node_communication([]) == 0

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.record_transmission(1, 2, 10)
        b.record_transmission(1, 2, 5)
        b.record_flooding_rounds(3.0, "x")
        b.predicate_tests = 2
        a.merge(b)
        assert a.bytes_sent[1] == 15
        assert a.flooding_rounds == 3.0
        assert a.predicate_tests == 2

    def test_summary_keys(self):
        summary = Metrics().summary()
        assert {
            "total_bytes", "flooding_rounds", "predicate_tests",
            "messages_lost", "faults_injected", "crash_intervals",
            "partition_intervals",
        } <= set(summary)


class TestFaultAccounting:
    def test_lost_transmission_charges_the_sender(self):
        metrics = Metrics()
        metrics.record_lost_transmission(3, 40)
        assert metrics.bytes_sent[3] == 40
        assert metrics.messages_sent[3] == 1
        assert metrics.messages_lost == 1
        assert metrics.bytes_received == {}  # nothing was delivered

    def test_fault_counters_merge_additively(self):
        a, b = Metrics(), Metrics()
        a.record_fault("crash")
        a.record_crash_intervals(4)
        b.record_fault("crash", 2)
        b.record_fault("burst-loss")
        b.record_partition_intervals(3)
        a.merge(b)
        assert a.faults_injected == {"crash": 3, "burst-loss": 1}
        assert a.crash_intervals == 4
        assert a.partition_intervals == 3
        assert a.summary()["faults_injected"] == 4.0

    def test_fault_counters_round_trip(self):
        original = Metrics()
        original.record_fault("duplicate", 5)
        original.record_crash_intervals(7)
        original.record_partition_intervals(2)
        restored = Metrics.from_dict(original.to_dict())
        assert restored == original
        assert restored.faults_injected["duplicate"] == 5


class TestHostEvents:
    def test_record_host_event_accumulates(self):
        metrics = Metrics()
        metrics.record_host_event("host-1.restart")
        metrics.record_host_event("host-1.restart")
        metrics.record_host_event("host-1.retry:control-connect", 3)
        assert metrics.host_events["host-1.restart"] == 2
        assert metrics.host_events["host-1.retry:control-connect"] == 3

    def test_merge_is_additive_per_event(self):
        a, b = Metrics(), Metrics()
        a.record_host_event("host-0.restart")
        a.record_host_event("host-0.exit:0")
        b.record_host_event("host-0.restart", 2)
        b.record_host_event("host-1.degraded")
        a.merge(b)
        assert a.host_events == {
            "host-0.restart": 3,
            "host-0.exit:0": 1,
            "host-1.degraded": 1,
        }

    def test_round_trip_is_lossless(self):
        original = Metrics()
        original.record_host_event("host-2.restart", 2)
        original.record_host_event("host-2.exit:-9")
        restored = Metrics.from_dict(original.to_dict())
        assert restored == original
        assert restored.host_events["host-2.exit:-9"] == 1

    def test_empty_counter_is_omitted_everywhere(self):
        metrics = Metrics()
        assert "host_events" not in metrics.to_dict()
        assert "host_events" not in metrics.summary()
        assert "host_restarts" not in metrics.summary()

    def test_summary_totals_and_restart_count(self):
        metrics = Metrics()
        metrics.record_host_event("host-0.restart", 2)
        metrics.record_host_event("host-1.restart")
        metrics.record_host_event("host-1.degraded")
        metrics.record_host_event("host-0.retry:peer-send", 4)
        summary = metrics.summary()
        assert summary["host_events"] == 8.0
        assert summary["host_restarts"] == 3.0


def sample_metrics(seed: int) -> Metrics:
    metrics = Metrics()
    for i in range(3):
        metrics.record_transmission(seed + i, seed + i + 1, 10 * (i + 1))
    metrics.record_flooding_rounds(float(seed), f"phase-{seed}")
    if seed % 2:
        metrics.record_predicate_test()
    else:
        metrics.record_authenticated_broadcast()
    metrics.record_intervals(seed)
    metrics.messages_lost = seed
    metrics.record_fault("crash", seed + 1)
    metrics.record_fault(f"kind-{seed % 2}")
    metrics.record_crash_intervals(2 * seed)
    metrics.record_partition_intervals(seed)
    return metrics


class TestSerialization:
    def test_round_trip_is_lossless(self):
        import json

        original = sample_metrics(3)
        data = json.loads(json.dumps(original.to_dict()))  # via real JSON
        restored = Metrics.from_dict(data)
        assert restored == original
        assert restored.node_communication(4) == original.node_communication(4)
        assert restored.summary() == original.summary()

    def test_round_trip_restores_int_node_ids(self):
        original = sample_metrics(1)
        restored = Metrics.from_dict(original.to_dict())
        assert all(isinstance(k, int) for k in restored.bytes_sent)

    def test_empty_round_trip(self):
        assert Metrics.from_dict(Metrics().to_dict()) == Metrics()


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        """a ⊕ b == b ⊕ a on every accumulator.

        The round_log keeps arrival order (a presentation detail), so
        commutativity there is up to multiset equality.
        """
        from collections import Counter

        a, b = sample_metrics(2), sample_metrics(5)
        ab = Metrics.from_dict(a.to_dict())
        ab.merge(b)
        ba = Metrics.from_dict(b.to_dict())
        ba.merge(a)

        assert ab.bytes_sent == ba.bytes_sent
        assert ab.bytes_received == ba.bytes_received
        assert ab.messages_sent == ba.messages_sent
        assert ab.messages_received == ba.messages_received
        assert ab.flooding_rounds == ba.flooding_rounds
        assert ab.messages_lost == ba.messages_lost
        assert ab.predicate_tests == ba.predicate_tests
        assert ab.authenticated_broadcasts == ba.authenticated_broadcasts
        assert ab.intervals_elapsed == ba.intervals_elapsed
        assert Counter(ab.round_log) == Counter(ba.round_log)
        assert ab.summary() == ba.summary()

    def test_merge_is_associative_on_summaries(self):
        a, b, c = sample_metrics(1), sample_metrics(2), sample_metrics(3)
        left = Metrics.from_dict(a.to_dict())
        left.merge(b)
        left.merge(c)
        bc = Metrics.from_dict(b.to_dict())
        bc.merge(c)
        right = Metrics.from_dict(a.to_dict())
        right.merge(bc)
        assert left.summary() == right.summary()
        assert left.bytes_sent == right.bytes_sent

    def test_merge_identity(self):
        a = sample_metrics(4)
        merged = Metrics.from_dict(a.to_dict())
        merged.merge(Metrics())
        assert merged == a

    def test_per_worker_accumulators_combine_losslessly(self):
        """The campaign use-case: shard executions, merge, compare."""
        whole = Metrics()
        for seed in range(6):
            whole.merge(sample_metrics(seed))
        shard_a, shard_b = Metrics(), Metrics()
        for seed in range(3):
            shard_a.merge(sample_metrics(seed))
        for seed in range(3, 6):
            shard_b.merge(sample_metrics(seed))
        shard_a.merge(shard_b)
        assert shard_a == whole
