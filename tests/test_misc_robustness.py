"""Assorted robustness: decoder fuzz, deployment builder paths, SOF with
competing vetoes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Deployment, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.crypto.encoding import decode_parts, encode_parts
from repro.errors import CryptoError
from repro.topology import grid_topology


class TestDecoderFuzz:
    @given(st.binary(max_size=200))
    def test_decode_never_crashes_uncontrolled(self, data):
        """Arbitrary bytes either decode or raise CryptoError — no other
        exception escapes (a hostile frame cannot crash a sensor)."""
        try:
            decode_parts(data)
        except CryptoError:
            pass

    @given(st.lists(st.integers(-(2**64), 2**64), max_size=5))
    def test_bitflip_never_decodes_to_original(self, parts):
        encoded = bytearray(encode_parts(*parts))
        if not encoded:
            return
        encoded[len(encoded) // 2] ^= 0xFF
        try:
            decoded = decode_parts(bytes(encoded))
        except CryptoError:
            return
        assert decoded != tuple(parts)


class TestDeploymentBuilder:
    def test_custom_master_secret_changes_keys(self):
        a = build_deployment(num_nodes=10, seed=1, master_secret=b"alpha")
        b = build_deployment(num_nodes=10, seed=1, master_secret=b"beta")
        assert a.registry.sensor_key(1) != b.registry.sensor_key(1)

    def test_same_seed_same_deployment(self):
        a = build_deployment(num_nodes=15, seed=4)
        b = build_deployment(num_nodes=15, seed=4)
        assert sorted(a.topology.edges()) == sorted(b.topology.edges())
        assert a.registry.ring(3).indices == b.registry.ring(3).indices

    def test_deployment_dataclass_fields(self):
        deployment = build_deployment(num_nodes=10, seed=1)
        assert isinstance(deployment, Deployment)
        assert deployment.network.topology is deployment.topology
        assert deployment.network.registry is deployment.registry

    def test_readings_default_to_zero_for_missing_sensors(self):
        deployment = build_deployment(num_nodes=10, seed=1)
        protocol = VMATProtocol(deployment.network)
        # Only one sensor given a reading: the rest default to 0.0 and
        # one of them wins the MIN.
        result = protocol.execute(MinQuery(), {3: 5.0})
        assert result.produced_result
        assert result.estimate == 0.0


class TestCompetingVetoes:
    @settings(max_examples=10, deadline=None)
    @given(
        vetoers=st.sets(st.integers(1, 15), min_size=2, max_size=6),
        seed=st.integers(0, 50),
    )
    def test_many_vetoers_one_always_lands(self, vetoers, seed):
        """SOF with several simultaneous honest vetoers: exactly the
        one-is-enough semantics — the BS hears a valid veto, and it is
        one of the actual vetoers."""
        from repro.core.confirmation import run_confirmation
        from repro.core.tree import form_tree

        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=grid_topology(4, 4),
            seed=seed,
        )
        readings = {i: 50.0 for i in dep.topology.sensor_ids}
        for vetoer in vetoers:
            readings[vetoer] = 1.0
        for node_id, node in dep.network.nodes.items():
            node.begin_execution(reading=readings[node_id])
            node.query_values = [node.reading]
        form_tree(dep.network, None, 10)
        result = run_confirmation(dep.network, None, 10, b"n", [10.0])
        assert result.valid_veto is not None
        assert result.valid_veto[0].sensor_id in vetoers
