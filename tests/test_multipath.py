"""Multi-path ring aggregation (Section IV-D).

With multipath on, a sensor keeps *every* same-interval beacon sender as
a parent and sends its bundle to all of them — the synopsis-diffusion
ring structure.  The paper's point: this routes around malicious
parents, so a single dropper on one shortest path no longer suppresses
the minimum, while all audit/pinpointing guarantees carry over.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import (
    CountQuery,
    ExecutionOutcome,
    MinQuery,
    VMATProtocol,
    build_deployment,
    small_test_config,
)
from repro.adversary import Adversary, DropMinimumStrategy
from repro.config import NetworkConfig
from repro.topology import grid_topology

from tests.conftest import assert_only_malicious_revoked


def multipath_config(depth_bound=10):
    return replace(
        small_test_config(depth_bound=depth_bound),
        network=NetworkConfig(multipath=True),
    )


def deploy(malicious=frozenset(), multipath=True, seed=5):
    config = multipath_config() if multipath else small_test_config(depth_bound=10)
    return build_deployment(
        config=config,
        topology=grid_topology(4, 4),
        malicious_ids=malicious,
        seed=seed,
    )


class TestHonestMultipath:
    def test_min_query_exact(self):
        dep = deploy()
        protocol = VMATProtocol(dep.network)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 3.0
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert result.estimate == 3.0

    def test_interior_nodes_have_multiple_parents(self):
        dep = deploy()
        protocol = VMATProtocol(dep.network)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        multi = [
            n for n, parents in result.tree.parents.items() if len(parents) > 1
        ]
        assert multi, "4x4 grid must yield multi-parent interior nodes"

    def test_audit_records_one_send_per_parent(self):
        dep = deploy()
        protocol = VMATProtocol(dep.network)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        result = protocol.execute(MinQuery(), readings)
        for node_id, parents in result.tree.parents.items():
            node = dep.network.nodes[node_id]
            assert len(node.audit.agg_sends) == len(parents)

    def test_count_query_multipath(self):
        dep = deploy()
        protocol = VMATProtocol(dep.network)
        readings = {i: float(i % 2) for i in dep.topology.sensor_ids}
        query = CountQuery(predicate=lambda r: r > 0.5, num_synopses=120)
        result = protocol.execute(query, readings)
        truth = query.true_value(list(readings.values()))
        assert result.produced_result
        assert abs(result.estimate - truth) / truth < 0.4


class TestMultipathResilience:
    """The §IV-D motivation: multipath routes around a malicious parent."""

    def test_single_dropper_cannot_suppress_minimum(self):
        # Node 11 is one of two parents of corner 15; with multipath the
        # bundle also flows through 14 and the true minimum arrives.
        single = deploy(malicious={11}, multipath=False, seed=9)
        multi = deploy(malicious={11}, multipath=True, seed=9)
        outcomes = {}
        for label, dep in (("single", single), ("multi", multi)):
            adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=9)
            protocol = VMATProtocol(dep.network, adversary=adv)
            readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
            readings[15] = 1.0
            outcomes[label] = protocol.execute(MinQuery(), readings)
        # Multipath: correct result in one shot, nothing to pinpoint.
        assert outcomes["multi"].produced_result
        assert outcomes["multi"].estimate == 1.0

    def test_fenced_corner_still_pinpoints(self):
        """When ALL parents are droppers even multipath cannot deliver —
        but the veto machinery still triggers and revokes."""
        dep = deploy(malicious={11, 14}, multipath=True, seed=9)
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=9)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert result.revocations
        assert_only_malicious_revoked(dep, {11, 14})

    def test_multipath_session_converges(self):
        dep = deploy(malicious={11, 14}, multipath=True, seed=9)
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=9)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[15] = 1.0
        session = protocol.run_session(MinQuery(), readings, max_executions=200)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {11, 14})
