"""Link-layer edge cases: acceptance matrix, floods under partition,
revocation-aware delivery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_deployment, small_test_config
from repro.crypto import BroadcastAuthority, BroadcastVerifier, KeyDisclosure
from repro.crypto.authenticated_broadcast import AuthenticatedMessage
from repro.net.message import TreeBeacon
from repro.topology import line_topology


def beacon(hop=1):
    return TreeBeacon(origin=0, hop_count=hop)


class TestReceiverAcceptanceMatrix:
    """Every way an honest receiver's link layer can reject a frame."""

    @pytest.fixture
    def net(self):
        return build_deployment(num_nodes=12, seed=3, malicious_ids={4}).network

    def test_accepts_genuine_neighbor_frame(self, net):
        target = net.secure_neighbors(0)[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(0, [target], beacon(), interval=1)
        assert phase.verified_inbox(target, 1)

    def test_rejects_frame_on_revoked_key(self, net):
        sender, receiver = 4, list(net.topology.neighbors(4))[0]
        key = net.registry.edge_key_index(sender, receiver)
        assert key is not None
        net.registry.revoke_key(key)
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        # The adversary keeps using the revoked key anyway.
        phase.send(sender, [receiver], beacon(), interval=1, key_index=key)
        inbox = phase.inbox(receiver, 1)
        assert inbox and not inbox[0].verified

    def test_rejects_key_the_receiver_does_not_hold(self, net):
        # The adversary signs with a compromised key its victim lacks.
        sender = 4
        receiver = next(
            r for r in net.topology.neighbors(sender) if r in net.nodes
        )
        foreign = next(
            i
            for i in net.registry.ring(sender).indices
            if not net.registry.node_holds(receiver, i)
        )
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(sender, [receiver], beacon(), interval=1, key_index=foreign)
        inbox = phase.inbox(receiver, 1)
        assert inbox and not inbox[0].verified

    def test_no_shared_key_means_no_frame_at_all(self):
        # Paper-sparse keys: some radio neighbours share nothing.
        from repro.config import ExperimentConfig, KeyConfig, ProtocolConfig

        config = ExperimentConfig(
            keys=KeyConfig(pool_size=5_000, ring_size=10),
            protocol=ProtocolConfig(depth_bound=8),
        )
        dep = build_deployment(config=config, num_nodes=25, seed=3)
        net = dep.network
        pair = next(
            (
                (a, b)
                for a, b in net.topology.edges()
                if a != 0 and b != 0 and net.registry.edge_key_index(a, b) is None
            ),
            None,
        )
        if pair is None:
            pytest.skip("sparse draw produced no keyless link this seed")
        a, b = pair
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(a, [b], beacon(), interval=1)
        assert phase.inbox(b, 1) == []  # nothing even hits the inbox

    def test_base_station_accepts_any_held_key(self, net):
        neighbor = net.secure_neighbors(0)[0]
        # Any key in the neighbour's ring works toward the BS.
        key = net.registry.ring(neighbor).indices[-1]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(neighbor, [0], beacon(), interval=1, key_index=key)
        assert phase.verified_inbox(0, 1)


class TestFloodUnderPartition:
    def test_partitioned_sensors_not_reached(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=line_topology(6),
            malicious_ids={2},
            seed=3,
        )
        net = dep.network
        net.authenticated_flood("hello")
        # Sensors 3..5 sit beyond the malicious cut vertex: outside the
        # honest secure component, the [20] primitive cannot reach them.
        assert net.nodes[1].verifier.verified_index == 1
        for stranded in (3, 4, 5):
            assert net.nodes[stranded].verifier.verified_index == 0


class TestBroadcastVerifierFuzz:
    @settings(max_examples=30, deadline=None)
    @given(
        actions=st.lists(
            st.tuples(st.booleans(), st.integers(0, 5), st.booleans()),
            max_size=12,
        )
    )
    def test_only_authentic_payloads_ever_accepted(self, actions):
        """Under arbitrary interleavings of (possibly forged) messages
        and (possibly bogus) disclosures, a verifier only ever accepts
        payloads the authority actually signed for that index."""
        authority = BroadcastAuthority(b"fuzz-seed", chain_length=32)
        verifier = BroadcastVerifier(authority.anchor)
        signed = {}
        pending_disclosures = []
        accepted = []
        for forge, index_hint, do_disclose in actions:
            if not do_disclose:
                if forge:
                    verifier.receive_message(
                        AuthenticatedMessage(
                            index=index_hint + 1,
                            payload=("forged", index_hint),
                            mac=b"\x00" * 8,
                        )
                    )
                else:
                    message = authority.sign("genuine", len(signed))
                    signed[message.index] = message.payload
                    verifier.receive_message(message)
                    pending_disclosures.append(message.index)
            else:
                if forge:
                    result = verifier.receive_disclosure(
                        KeyDisclosure(index=index_hint + 1, chain_key=b"bogus-key-bytes!")
                    )
                    assert result is None
                elif pending_disclosures:
                    index = pending_disclosures.pop(0)
                    result = verifier.receive_disclosure(authority.disclose(index))
                    if result is not None:
                        accepted.append((index, result))
        for index, payload in accepted:
            assert signed[index] == payload
