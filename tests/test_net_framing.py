"""Stream framing: length-prefixed records over arbitrary chunkings.

The service transport rides on :mod:`repro.net.framing`.  These tests
exercise the two halves of the stream contract — partial reads and
coalesced reads — over synthetic buffers *and* a real ``socketpair``,
plus the guard rails (``MAX_RECORD_BYTES``, corrupt bodies) and the
payload codec's round-trip through the canonical byte encodings.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.net.framing import (
    LENGTH_PREFIX,
    MAX_RECORD_BYTES,
    FramingError,
    NeedMoreData,
    StreamDecoder,
    decode_payload,
    decode_record,
    encode_payload,
    encode_record,
    iter_records,
)
from repro.net.message import (
    PredicateChallenge,
    PredicateReply,
    ReadingMessage,
    SynopsisBundle,
    TreeBeacon,
    VetoMessage,
)
from repro.service.wire import RecordChannel

RECORDS = [
    ("hello", 1, b"\x00\xff", True, None),
    ("tick", 7),
    ("nested", (1, (2, b"x"), "y"), 3.5),
]


# ----------------------------------------------------------------------
# Record encode/decode
# ----------------------------------------------------------------------
def test_record_round_trip():
    for parts in RECORDS:
        decoded, end = decode_record(encode_record(*parts))
        assert decoded == parts
        assert end == len(encode_record(*parts))


def test_every_truncation_raises_need_more_data():
    data = encode_record(*RECORDS[0])
    for cut in range(len(data)):
        with pytest.raises(NeedMoreData):
            decode_record(data[:cut])


def test_need_more_data_is_not_a_framing_error():
    # Callers distinguish "read more" from "corrupt stream".
    assert not issubclass(NeedMoreData, FramingError)


def test_declared_length_beyond_bound_is_rejected():
    header = LENGTH_PREFIX.pack(MAX_RECORD_BYTES + 1)
    with pytest.raises(FramingError):
        decode_record(header + b"\x00" * 16)


def test_oversize_record_refused_at_encode_time():
    with pytest.raises(FramingError):
        encode_record(b"\x00" * (MAX_RECORD_BYTES + 1))


def test_corrupt_body_is_a_framing_error():
    body = b"\x9f\x9f\x9f\x9f"
    with pytest.raises(FramingError):
        decode_record(LENGTH_PREFIX.pack(len(body)) + body)


def test_iter_records_decodes_back_to_back_buffer():
    buffer = b"".join(encode_record(*parts) for parts in RECORDS)
    assert list(iter_records(buffer)) == RECORDS


# ----------------------------------------------------------------------
# Incremental decoding
# ----------------------------------------------------------------------
def test_stream_decoder_byte_at_a_time():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    decoder = StreamDecoder()
    out = []
    for index in range(len(data)):
        out.extend(decoder.feed(data[index : index + 1]))
    assert out == RECORDS
    assert decoder.pending_bytes == 0


def test_stream_decoder_coalesced_feed_returns_many():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    decoder = StreamDecoder()
    assert decoder.feed(data) == RECORDS


def test_stream_decoder_pending_bytes_tracks_partial_tail():
    whole = encode_record(*RECORDS[0])
    partial = encode_record(*RECORDS[1])
    decoder = StreamDecoder()
    records = decoder.feed(whole + partial[:3])
    assert records == [RECORDS[0]]
    assert decoder.pending_bytes == 3
    assert decoder.feed(partial[3:]) == [RECORDS[1]]
    assert decoder.pending_bytes == 0


def test_stream_decoder_split_across_every_boundary():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    for cut in range(1, len(data)):
        decoder = StreamDecoder()
        out = decoder.feed(data[:cut]) + decoder.feed(data[cut:])
        assert out == RECORDS, f"chunk boundary at byte {cut}"


# ----------------------------------------------------------------------
# A real socket: the chunking the kernel actually produces
# ----------------------------------------------------------------------
def test_records_survive_a_real_socketpair_in_tiny_chunks():
    left, right = socket.socketpair()
    try:
        payload = b"".join(encode_record(*parts) for parts in RECORDS) * 20
        expected = RECORDS * 20

        def drip():
            for index in range(0, len(payload), 5):
                left.sendall(payload[index : index + 5])
            left.shutdown(socket.SHUT_WR)

        writer = threading.Thread(target=drip)
        writer.start()
        decoder = StreamDecoder()
        received = []
        while True:
            chunk = right.recv(4096)
            if not chunk:
                break
            received.extend(decoder.feed(chunk))
        writer.join()
        assert received == expected
        assert decoder.pending_bytes == 0
    finally:
        left.close()
        right.close()


def test_record_channel_request_reply_over_socketpair():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        client.send("ping", 42)
        assert server.recv() == ("ping", 42)
        server.send("pong", 43)
        assert client.recv() == ("pong", 43)
    finally:
        client.close()
        server.close()


def test_record_channel_error_record_raises():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        server.send("error", "replica exploded")
        with pytest.raises(ServiceError, match="replica exploded"):
            client.recv()
    finally:
        client.close()
        server.close()


def test_record_channel_peer_close_raises_service_error():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        right.close()
        with pytest.raises(ServiceError, match="closed by peer"):
            client.recv()
    finally:
        client.close()


# ----------------------------------------------------------------------
# Payload codec: invert canonical_bytes for every protocol payload
# ----------------------------------------------------------------------
PAYLOADS = [
    ReadingMessage(sensor_id=3, value=1.25, mac=b"\x01" * 8, instance=2),
    VetoMessage(sensor_id=5, value=9.0, level=2, mac=b"\x02" * 8, instance=1),
    TreeBeacon(origin=0, hop_count=4),
    PredicateChallenge(
        key_ref=("pool", 17),
        predicate_bytes=b"pred",
        nonce=b"n" * 8,
        reply_hash=b"h" * 16,
    ),
    PredicateReply(mac=b"\x03" * 8),
    SynopsisBundle(
        messages=(
            ReadingMessage(sensor_id=1, value=0.5, mac=b"a" * 8),
            ReadingMessage(sensor_id=2, value=0.75, mac=b"b" * 8, instance=3),
        )
    ),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
def test_payload_codec_round_trip(payload):
    decoded = decode_payload(encode_payload(payload))
    assert decoded == payload
    assert encode_payload(decoded) == encode_payload(payload)


def test_unknown_payload_tag_rejected():
    from repro.crypto.encoding import encode_parts

    with pytest.raises(FramingError, match="unknown payload tag"):
        decode_payload(encode_parts("no-such-payload", 1))


def test_bundle_may_only_carry_readings():
    from repro.crypto.encoding import encode_parts

    veto = VetoMessage(sensor_id=5, value=9.0, level=2, mac=b"\x02" * 8)
    data = encode_parts("bundle", veto.canonical_bytes())
    with pytest.raises(FramingError):
        decode_payload(data)
