"""Stream framing: length-prefixed records over arbitrary chunkings.

The service transport rides on :mod:`repro.net.framing`.  These tests
exercise the two halves of the stream contract — partial reads and
coalesced reads — over synthetic buffers *and* a real ``socketpair``,
plus the guard rails (``MAX_RECORD_BYTES``, corrupt bodies) and the
payload codec's round-trip through the canonical byte encodings.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import HostChannelError, ServiceError
from repro.net.framing import (
    LENGTH_PREFIX,
    MAX_RECORD_BYTES,
    FramingError,
    NeedMoreData,
    StreamDecoder,
    decode_payload,
    decode_record,
    encode_payload,
    encode_record,
    iter_records,
)
from repro.net.message import (
    PredicateChallenge,
    PredicateReply,
    ReadingMessage,
    SynopsisBundle,
    TreeBeacon,
    VetoMessage,
)
from repro.service.wire import RecordChannel

RECORDS = [
    ("hello", 1, b"\x00\xff", True, None),
    ("tick", 7),
    ("nested", (1, (2, b"x"), "y"), 3.5),
]


# ----------------------------------------------------------------------
# Record encode/decode
# ----------------------------------------------------------------------
def test_record_round_trip():
    for parts in RECORDS:
        decoded, end = decode_record(encode_record(*parts))
        assert decoded == parts
        assert end == len(encode_record(*parts))


def test_every_truncation_raises_need_more_data():
    data = encode_record(*RECORDS[0])
    for cut in range(len(data)):
        with pytest.raises(NeedMoreData):
            decode_record(data[:cut])


def test_need_more_data_is_not_a_framing_error():
    # Callers distinguish "read more" from "corrupt stream".
    assert not issubclass(NeedMoreData, FramingError)


def test_declared_length_beyond_bound_is_rejected():
    header = LENGTH_PREFIX.pack(MAX_RECORD_BYTES + 1)
    with pytest.raises(FramingError):
        decode_record(header + b"\x00" * 16)


def test_oversize_record_refused_at_encode_time():
    with pytest.raises(FramingError):
        encode_record(b"\x00" * (MAX_RECORD_BYTES + 1))


def test_corrupt_body_is_a_framing_error():
    body = b"\x9f\x9f\x9f\x9f"
    with pytest.raises(FramingError):
        decode_record(LENGTH_PREFIX.pack(len(body)) + body)


def test_iter_records_decodes_back_to_back_buffer():
    buffer = b"".join(encode_record(*parts) for parts in RECORDS)
    assert list(iter_records(buffer)) == RECORDS


# ----------------------------------------------------------------------
# Incremental decoding
# ----------------------------------------------------------------------
def test_stream_decoder_byte_at_a_time():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    decoder = StreamDecoder()
    out = []
    for index in range(len(data)):
        out.extend(decoder.feed(data[index : index + 1]))
    assert out == RECORDS
    assert decoder.pending_bytes == 0


def test_stream_decoder_coalesced_feed_returns_many():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    decoder = StreamDecoder()
    assert decoder.feed(data) == RECORDS


def test_stream_decoder_pending_bytes_tracks_partial_tail():
    whole = encode_record(*RECORDS[0])
    partial = encode_record(*RECORDS[1])
    decoder = StreamDecoder()
    records = decoder.feed(whole + partial[:3])
    assert records == [RECORDS[0]]
    assert decoder.pending_bytes == 3
    assert decoder.feed(partial[3:]) == [RECORDS[1]]
    assert decoder.pending_bytes == 0


def test_stream_decoder_split_across_every_boundary():
    data = b"".join(encode_record(*parts) for parts in RECORDS)
    for cut in range(1, len(data)):
        decoder = StreamDecoder()
        out = decoder.feed(data[:cut]) + decoder.feed(data[cut:])
        assert out == RECORDS, f"chunk boundary at byte {cut}"


# ----------------------------------------------------------------------
# A real socket: the chunking the kernel actually produces
# ----------------------------------------------------------------------
def test_records_survive_a_real_socketpair_in_tiny_chunks():
    left, right = socket.socketpair()
    try:
        payload = b"".join(encode_record(*parts) for parts in RECORDS) * 20
        expected = RECORDS * 20

        def drip():
            for index in range(0, len(payload), 5):
                left.sendall(payload[index : index + 5])
            left.shutdown(socket.SHUT_WR)

        writer = threading.Thread(target=drip)
        writer.start()
        decoder = StreamDecoder()
        received = []
        while True:
            chunk = right.recv(4096)
            if not chunk:
                break
            received.extend(decoder.feed(chunk))
        writer.join()
        assert received == expected
        assert decoder.pending_bytes == 0
    finally:
        left.close()
        right.close()


def test_record_channel_request_reply_over_socketpair():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        client.send("ping", 42)
        assert server.recv() == ("ping", 42)
        server.send("pong", 43)
        assert client.recv() == ("pong", 43)
    finally:
        client.close()
        server.close()


def test_record_channel_error_record_raises():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        server.send("error", "replica exploded")
        with pytest.raises(ServiceError, match="replica exploded"):
            client.recv()
    finally:
        client.close()
        server.close()


def test_record_channel_peer_close_raises_service_error():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        right.close()
        with pytest.raises(ServiceError, match="closed by peer"):
            client.recv()
    finally:
        client.close()


# ----------------------------------------------------------------------
# Failure paths: every way a stream can go wrong must surface as one
# clean typed error — never a hang, never a partially-accepted frame.
# ----------------------------------------------------------------------
def test_stream_decoder_truncated_mid_record_accepts_nothing():
    """A record cut mid-body yields no records and keeps the tail pending;
    completing the bytes later yields exactly the one record."""
    payload = encode_record("tick", 7)
    decoder = StreamDecoder()
    assert decoder.feed(payload[: len(payload) - 3]) == []
    assert decoder.pending_bytes == len(payload) - 3
    assert decoder.feed(payload[len(payload) - 3 :]) == [("tick", 7)]
    assert decoder.pending_bytes == 0


def test_record_channel_truncated_mid_record_raises_channel_error():
    """Peer dies after half a record: typed error, no hang, and the
    partial frame is never surfaced as data."""
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        payload = encode_record("tick", 7)
        right.sendall(payload[: len(payload) // 2])
        right.close()
        with pytest.raises(HostChannelError, match="closed by peer"):
            client.recv()
    finally:
        client.close()


def test_stream_decoder_oversize_declared_length_rejected_before_body():
    """A hostile length prefix is refused from the prefix alone — the
    decoder never buffers toward an impossible record."""
    decoder = StreamDecoder()
    prefix = LENGTH_PREFIX.pack(MAX_RECORD_BYTES + 1)
    with pytest.raises(FramingError, match="exceeds"):
        decoder.feed(prefix)


def test_record_channel_oversize_record_raises_channel_error():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        right.sendall(LENGTH_PREFIX.pack(MAX_RECORD_BYTES + 1))
        with pytest.raises(HostChannelError, match="corrupt control stream"):
            client.recv()
    finally:
        client.close()
        right.close()


def test_stream_decoder_garbage_prefix_is_a_framing_error():
    """Arbitrary non-protocol bytes (here an HTTP request line) decode to
    an absurd length and are rejected as framing, not crashed on."""
    decoder = StreamDecoder()
    with pytest.raises(FramingError):
        decoder.feed(b"GET / HTTP/1.1\r\n\r\n")


def test_record_channel_garbage_prefix_raises_channel_error():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        right.sendall(b"GET / HTTP/1.1\r\n\r\n")
        with pytest.raises(HostChannelError, match="corrupt control stream"):
            client.recv()
    finally:
        client.close()
        right.close()


def test_record_channel_corrupt_body_raises_channel_error():
    """A well-framed record whose body fails the codec is a channel
    error on the receiver, not an unhandled decode exception."""
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    try:
        body = b"\xfe\xfd\xfc"
        right.sendall(LENGTH_PREFIX.pack(len(body)) + body)
        with pytest.raises(HostChannelError, match="corrupt control stream"):
            client.recv()
    finally:
        client.close()
        right.close()


def test_record_channel_filters_heartbeats_and_tracks_liveness():
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        server.send("hb")
        server.send("hb")
        server.send("tick", 3)
        assert client.recv() == ("tick", 3)  # heartbeats never surface
    finally:
        client.close()
        server.close()


def test_record_channel_abort_resets_instead_of_fin():
    """abort() must produce a hard RST so the peer sees a connection
    error (the chaos harness's mid-record reset), not a clean EOF."""
    left, right = socket.socketpair()
    client = RecordChannel(left, timeout=10.0)
    server = RecordChannel(right, timeout=10.0)
    try:
        client.send("tick", 1)
        assert server.recv() == ("tick", 1)
        client.abort()
        with pytest.raises(ServiceError):
            server.recv()
            server.recv()  # at most one buffered read before the error
    finally:
        server.close()


# ----------------------------------------------------------------------
# Payload codec: invert canonical_bytes for every protocol payload
# ----------------------------------------------------------------------
PAYLOADS = [
    ReadingMessage(sensor_id=3, value=1.25, mac=b"\x01" * 8, instance=2),
    VetoMessage(sensor_id=5, value=9.0, level=2, mac=b"\x02" * 8, instance=1),
    TreeBeacon(origin=0, hop_count=4),
    PredicateChallenge(
        key_ref=("pool", 17),
        predicate_bytes=b"pred",
        nonce=b"n" * 8,
        reply_hash=b"h" * 16,
    ),
    PredicateReply(mac=b"\x03" * 8),
    SynopsisBundle(
        messages=(
            ReadingMessage(sensor_id=1, value=0.5, mac=b"a" * 8),
            ReadingMessage(sensor_id=2, value=0.75, mac=b"b" * 8, instance=3),
        )
    ),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
def test_payload_codec_round_trip(payload):
    decoded = decode_payload(encode_payload(payload))
    assert decoded == payload
    assert encode_payload(decoded) == encode_payload(payload)


def test_unknown_payload_tag_rejected():
    from repro.crypto.encoding import encode_parts

    with pytest.raises(FramingError, match="unknown payload tag"):
        decode_payload(encode_parts("no-such-payload", 1))


def test_bundle_may_only_carry_readings():
    from repro.crypto.encoding import encode_parts

    veto = VetoMessage(sensor_id=5, value=9.0, level=2, mac=b"\x02" * 8)
    data = encode_parts("bundle", veto.canonical_bytes())
    with pytest.raises(FramingError):
        decode_payload(data)
