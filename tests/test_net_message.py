"""Wire formats: canonical bytes, sizes, ordering, digests."""

from __future__ import annotations

import pytest

from repro.net.message import (
    PredicateChallenge,
    PredicateReply,
    ReadingMessage,
    SynopsisBundle,
    TreeBeacon,
    VetoMessage,
    message_digest,
)


def reading(value=1.0, sensor_id=3, instance=0, mac=b"\x01" * 8):
    return ReadingMessage(sensor_id=sensor_id, value=value, mac=mac, instance=instance)


class TestReadingMessage:
    def test_ordering_by_value(self):
        assert reading(1.0) < reading(2.0)

    def test_ordering_ties_broken_by_id(self):
        assert reading(1.0, sensor_id=1) < reading(1.0, sensor_id=2)

    def test_ordering_is_total_on_distinct_messages(self):
        a, b = reading(1.0, mac=b"a" * 8), reading(1.0, mac=b"b" * 8)
        assert (a < b) != (b < a)

    def test_wire_size_matches_paper_budget(self):
        # id (2) + value (8) + MAC (8) + instance tag (1) = 19; with the
        # link-layer edge MAC + key index this lands near the paper's
        # 24-bytes-per-synopsis budget.
        assert reading().wire_size() == 19

    def test_canonical_bytes_distinguish_fields(self):
        assert reading(1.0).canonical_bytes() != reading(2.0).canonical_bytes()
        assert reading(instance=0).canonical_bytes() != reading(instance=1).canonical_bytes()

    def test_mac_parts_include_nonce(self):
        parts = reading().mac_parts(b"nonce")
        assert b"nonce" in parts


class TestVetoMessage:
    def test_canonical_bytes_cover_level(self):
        a = VetoMessage(sensor_id=1, value=1.0, level=2, mac=b"m" * 8)
        b = VetoMessage(sensor_id=1, value=1.0, level=3, mac=b"m" * 8)
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_wire_size(self):
        veto = VetoMessage(sensor_id=1, value=1.0, level=2, mac=b"m" * 8)
        assert veto.wire_size() == 2 + 8 + 1 + 8 + 1


class TestSynopsisBundle:
    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            SynopsisBundle(messages=())

    def test_wire_size_sums_members(self):
        bundle = SynopsisBundle(messages=(reading(instance=0), reading(instance=1)))
        assert bundle.wire_size() == 2 * reading().wire_size()

    def test_paper_bundle_cost(self):
        # 100 synopses should land in the same ballpark as the paper's
        # 2.4 KB estimate (100 x 24 bytes).
        bundle = SynopsisBundle(
            messages=tuple(reading(instance=i) for i in range(100))
        )
        assert 1_500 <= bundle.wire_size() <= 2_500

    def test_instance_lookup(self):
        bundle = SynopsisBundle(messages=(reading(instance=0), reading(instance=1)))
        assert bundle.instance_message(1).instance == 1
        with pytest.raises(KeyError):
            bundle.instance_message(5)


class TestDigest:
    def test_digest_is_stable(self):
        assert message_digest(reading()) == message_digest(reading())

    def test_digest_distinguishes_types(self):
        beacon = TreeBeacon(origin=3, hop_count=1)
        assert message_digest(beacon) != message_digest(reading())

    def test_digest_distinguishes_contents(self):
        assert message_digest(reading(1.0)) != message_digest(reading(1.5))

    def test_digest_length(self):
        assert len(message_digest(reading())) == 32


class TestPredicateFrames:
    def test_challenge_wire_size(self):
        challenge = PredicateChallenge(
            key_ref=("pool", 5),
            predicate_bytes=b"p" * 20,
            nonce=b"n" * 8,
            reply_hash=b"h" * 32,
        )
        assert challenge.wire_size() == 3 + 20 + 8 + 32

    def test_reply_wire_size(self):
        assert PredicateReply(mac=b"m" * 8).wire_size() == 8
