"""Network layer: phases, edge MACs, capacity, secure topology."""

from __future__ import annotations

import pytest

from repro import build_deployment, small_test_config
from repro.errors import NetworkError
from repro.net.message import TreeBeacon
from repro.topology import line_topology


def beacon(origin=0, hop=1):
    return TreeBeacon(origin=origin, hop_count=hop)


@pytest.fixture
def net(deployment):
    return deployment.network


class TestPhaseDiscipline:
    def test_intervals_advance_sequentially(self, net):
        phase = net.new_phase("t", 3)
        assert list(phase.intervals()) == [1, 2, 3]

    def test_out_of_order_interval_rejected(self, net):
        phase = net.new_phase("t", 3)
        phase.begin_interval(1)
        with pytest.raises(NetworkError):
            phase.begin_interval(3)

    def test_cannot_send_into_past(self, net):
        phase = net.new_phase("t", 3)
        phase.begin_interval(1)
        phase.begin_interval(2)
        with pytest.raises(NetworkError):
            phase.send(0, net.secure_neighbors(0), beacon(), interval=1)

    def test_send_beyond_phase_is_silent_noop(self, net):
        phase = net.new_phase("t", 3)
        phase.begin_interval(1)
        assert phase.send(0, net.secure_neighbors(0), beacon(), interval=4) is False

    def test_inbox_unreadable_before_interval_begins(self, net):
        phase = net.new_phase("t", 3)
        with pytest.raises(NetworkError):
            phase.inbox(1, 1)

    def test_phase_sequence_monotone(self, net):
        a = net.new_phase("a", 1)
        b = net.new_phase("b", 1)
        assert b.sequence > a.sequence


class TestDelivery:
    def test_honest_send_is_verified_at_receiver(self, net):
        neighbor = net.secure_neighbors(0)[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(0, [neighbor], beacon(), interval=1)
        inbox = phase.verified_inbox(neighbor, 1)
        assert len(inbox) == 1
        assert inbox[0].sender == 0
        assert inbox[0].verified

    def test_self_send_rejected(self, net):
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        with pytest.raises(NetworkError):
            phase.send(1, [1], beacon(), interval=1)

    def test_nonneighbor_send_rejected_for_honest(self, net):
        far = next(
            i for i in net.topology.sensor_ids if not net.topology.has_edge(0, i)
        )
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        with pytest.raises(NetworkError):
            phase.send(0, [far], beacon(), interval=1)

    def test_bytes_accounted(self, net):
        neighbor = net.secure_neighbors(0)[0]
        before = net.metrics.bytes_sent[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(0, [neighbor], beacon(), interval=1)
        assert net.metrics.bytes_sent[0] > before
        assert net.metrics.bytes_received[neighbor] > 0


class TestKeyPossession:
    def test_cannot_mac_with_unheld_key(self):
        dep = build_deployment(num_nodes=10, seed=1, malicious_ids={2})
        net = dep.network
        outside = next(
            i for i in range(dep.config.keys.pool_size)
            if i not in net.adversary_pool_indices()
        )
        neighbor = net.topology.neighbors(2)
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        with pytest.raises(NetworkError):
            phase.send(2, list(neighbor)[:1], beacon(), interval=1, key_index=outside)

    def test_malicious_can_use_pooled_loot(self):
        dep = build_deployment(num_nodes=10, seed=1, malicious_ids={2, 3})
        net = dep.network
        # A key from 3's ring, usable by 2 (colluding loot).
        key = dep.registry.ring(3).indices[0]
        target = list(net.topology.neighbors(2))[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        assert phase.send(2, [target], beacon(), interval=1, key_index=key) is True
        delivered = phase.inbox(target, 1)
        assert len(delivered) == 1
        # Verified only if the honest target happens to hold the key.
        holds = target != 0 and key in dep.registry.ring(target)
        assert delivered[0].verified == (holds and target in net.nodes)

    def test_forged_claimed_sender_rejected_only_by_mac_content(self):
        dep = build_deployment(num_nodes=10, seed=1, malicious_ids={2})
        net = dep.network
        target = list(net.topology.neighbors(2))[0]
        key = net.registry.edge_key_index(2, target)
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(2, [target], beacon(), interval=1, key_index=key, claimed_sender=7)
        inbox = phase.inbox(target, 1)
        assert inbox[0].sender == 7  # forged claim carried through
        # still verified: edge MACs authenticate the KEY, not the sender.
        if target in net.nodes and key in dep.registry.ring(target):
            assert inbox[0].verified


class TestCapacity:
    def test_capacity_limits_distinct_payloads_per_interval(self, net):
        cap = net.config.network.forwarding_capacity
        neighbor = net.secure_neighbors(0)[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        sent = [
            phase.send(0, [neighbor], beacon(hop=i), interval=1)
            for i in range(cap + 3)
        ]
        assert sent.count(True) == cap
        assert phase.suppressed_sends == 3
        assert phase.remaining_capacity(0, 1) == 0

    def test_capacity_resets_per_interval(self, net):
        cap = net.config.network.forwarding_capacity
        neighbor = net.secure_neighbors(0)[0]
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        for i in range(cap):
            phase.send(0, [neighbor], beacon(hop=i), interval=1)
        phase.begin_interval(2)
        assert phase.remaining_capacity(0, 2) == cap


class TestSecureTopology:
    def test_secure_neighbors_subset_of_radio(self, net):
        for node in list(net.topology.node_ids)[:5]:
            assert set(net.secure_neighbors(node)) <= set(net.topology.neighbors(node))

    def test_revoking_sensor_removes_its_links(self, net):
        victim = net.secure_neighbors(0)[0]
        net.registry.revoke_sensor(victim)
        assert victim not in net.secure_neighbors(0)

    def test_honest_component_excludes_malicious(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(6),
            malicious_ids={3},
            seed=2,
        )
        component = dep.network.honest_secure_component()
        assert component == {0, 1, 2}

    def test_effective_depth_bound(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(6),
            seed=2,
        )
        assert dep.network.effective_depth_bound() == 5

    def test_base_station_cannot_be_malicious(self):
        with pytest.raises(NetworkError):
            build_deployment(num_nodes=10, seed=1, malicious_ids={0})


class TestAuthenticatedFlood:
    def test_payload_reaches_all_honest_nodes(self, net):
        payload = net.authenticated_flood("hello", 42)
        assert payload == ("hello", 42)
        for node in net.nodes.values():
            assert node.verifier.verified_index >= 1

    def test_flood_costs_one_round(self, net):
        before = net.metrics.flooding_rounds
        net.authenticated_flood("x")
        assert net.metrics.flooding_rounds == before + 1.0

    def test_flood_charges_bytes(self, net):
        net.authenticated_flood("x")
        assert all(net.metrics.bytes_received[i] > 0 for i in net.nodes)
