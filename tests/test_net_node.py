"""Audit store queries — the local half of every pinpointing predicate."""

from __future__ import annotations

import pytest

from repro.net.message import ReadingMessage, VetoMessage, message_digest
from repro.net.node import (
    AggReceiptRecord,
    AggSendRecord,
    AuditStore,
    ConfReceiptRecord,
    ConfSendRecord,
)


def reading(value, instance=0, sensor_id=9):
    return ReadingMessage(sensor_id=sensor_id, value=value, mac=b"m" * 8, instance=instance)


def veto(value=1.0, level=3, sensor_id=9):
    return VetoMessage(sensor_id=sensor_id, value=value, level=level, mac=b"m" * 8)


@pytest.fixture
def store():
    s = AuditStore()
    s.agg_sends.append(AggSendRecord(level=4, message=reading(5.0), out_edge_index=17, to=2))
    s.agg_receipts.append(
        AggReceiptRecord(interval=6, message=reading(5.0), in_edge_index=23, frm=7)
    )
    s.conf_sends.append(ConfSendRecord(interval=2, message=veto(), out_edge_index=31, to=3))
    s.conf_receipts.append(
        ConfReceiptRecord(interval=1, message=veto(), in_edge_index=29, frm=5)
    )
    return s


class TestAggForwardedValue:
    def test_matches_on_equal_bound(self, store):
        assert store.agg_forwarded_value(level=4, value_bound=5.0, key_low=0, key_high=99)

    def test_matches_on_looser_bound(self, store):
        assert store.agg_forwarded_value(4, 100.0, 0, 99)

    def test_rejects_tighter_bound(self, store):
        assert not store.agg_forwarded_value(4, 4.9, 0, 99)

    def test_rejects_wrong_level(self, store):
        assert not store.agg_forwarded_value(3, 5.0, 0, 99)

    def test_key_range_inclusive(self, store):
        assert store.agg_forwarded_value(4, 5.0, 17, 17)
        assert not store.agg_forwarded_value(4, 5.0, 18, 99)
        assert not store.agg_forwarded_value(4, 5.0, 0, 16)

    def test_instance_filter(self, store):
        assert not store.agg_forwarded_value(4, 5.0, 0, 99, instance=1)


class TestAggReceivedValue:
    def test_matches(self, store):
        assert store.agg_received_value(interval=6, value_bound=5.0, in_edge_index=23)

    def test_rejects_other_edge_key(self, store):
        assert not store.agg_received_value(6, 5.0, 24)

    def test_rejects_other_interval(self, store):
        assert not store.agg_received_value(5, 5.0, 23)


class TestExactQueries:
    def test_agg_sent_exact(self, store):
        digest = message_digest(reading(5.0))
        assert store.agg_sent_exact(digest, level=4, out_edge_index=17)
        assert not store.agg_sent_exact(digest, level=5, out_edge_index=17)
        assert not store.agg_sent_exact(message_digest(reading(6.0)), 4, 17)

    def test_agg_received_exact(self, store):
        digest = message_digest(reading(5.0))
        assert store.agg_received_exact(digest, interval=6, key_low=0, key_high=99)
        assert not store.agg_received_exact(digest, 6, 24, 99)

    def test_conf_sent_exact(self, store):
        digest = message_digest(veto())
        assert store.conf_sent_exact(digest, interval=2, out_edge_index=31)
        assert not store.conf_sent_exact(digest, 1, 31)

    def test_conf_received_exact(self, store):
        digest = message_digest(veto())
        assert store.conf_received_exact(digest, interval=1, key_low=29, key_high=29)
        assert not store.conf_received_exact(digest, 1, 30, 99)


class TestLifecycle:
    def test_clear_empties_everything(self, store):
        store.clear()
        assert not store.agg_sends and not store.agg_receipts
        assert not store.conf_sends and not store.conf_receipts

    def test_begin_execution_resets_node_state(self, deployment):
        node = deployment.network.nodes[1]
        node.level = 3
        node.parents = [0]
        node.forwarded_veto = True
        node.audit.agg_sends.append(
            AggSendRecord(level=3, message=reading(1.0), out_edge_index=1, to=0)
        )
        node.begin_execution(reading=7.5)
        assert node.reading == 7.5
        assert node.level is None and node.parents == []
        assert not node.forwarded_veto
        assert not node.audit.agg_sends
        assert node.query_values is None

    def test_has_valid_level(self, deployment):
        node = deployment.network.nodes[1]
        node.level = None
        assert not node.has_valid_level(10)
        node.level = 5
        assert node.has_valid_level(10)
        node.level = 11
        assert not node.has_valid_level(10)
