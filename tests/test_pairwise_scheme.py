"""Pairwise key pre-distribution (the "other schemes [1]" of §III)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy
from repro.errors import KeyManagementError
from repro.keys.schemes import PairwiseScheme
from repro.topology import grid_topology, line_topology

from tests.conftest import assert_only_malicious_revoked


class TestIndexLayout:
    def test_pool_size(self):
        assert PairwiseScheme(5).pool_size == 10
        assert PairwiseScheme(2).pool_size == 1

    def test_pair_index_bijective(self):
        scheme = PairwiseScheme(9)
        seen = set()
        for a in range(9):
            for b in range(a + 1, 9):
                index = scheme.pair_index(a, b)
                assert scheme.index_pair(index) == (a, b)
                seen.add(index)
        assert seen == set(range(scheme.pool_size))

    def test_pair_index_symmetric(self):
        scheme = PairwiseScheme(6)
        assert scheme.pair_index(2, 5) == scheme.pair_index(5, 2)

    def test_base_station_pairs_lowest(self):
        scheme = PairwiseScheme(7)
        bs_indices = {scheme.pair_index(0, s) for s in range(1, 7)}
        assert bs_indices == set(range(6))
        for sensor in range(1, 7):
            ring = scheme.ring_indices(sensor)
            assert ring[0] == scheme.pair_index(0, sensor)

    def test_ring_size_is_n_minus_1(self):
        scheme = PairwiseScheme(8)
        for sensor in range(1, 8):
            assert len(scheme.ring_indices(sensor)) == 7

    def test_holders_at_most_two(self):
        scheme = PairwiseScheme(8)
        for index in range(scheme.pool_size):
            holders = scheme.holders(index)
            assert 1 <= len(holders) <= 2  # BS pairs list one sensor

    def test_rejects_bad_input(self):
        scheme = PairwiseScheme(5)
        with pytest.raises(KeyManagementError):
            scheme.pair_index(2, 2)
        with pytest.raises(KeyManagementError):
            scheme.pair_index(0, 9)
        with pytest.raises(KeyManagementError):
            scheme.ring_indices(0)
        with pytest.raises(KeyManagementError):
            PairwiseScheme(1)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 30))
    def test_layout_property(self, n):
        scheme = PairwiseScheme(n)
        # Spot-check the inverse on a diagonal stripe of pairs.
        for a in range(0, n - 1, max(1, n // 5)):
            b = a + 1
            assert scheme.index_pair(scheme.pair_index(a, b)) == (a, b)


class TestPairwiseDeployment:
    def test_every_link_has_a_dedicated_key(self):
        dep = build_deployment(
            num_nodes=12, seed=4, key_scheme="pairwise",
            topology=grid_topology(3, 4),
        )
        scheme = PairwiseScheme(12)
        for a, b in dep.topology.edges():
            assert dep.registry.edge_key_index(a, b) == scheme.pair_index(a, b)

    def test_registry_holders_match_scheme(self):
        dep = build_deployment(num_nodes=10, seed=4, key_scheme="pairwise")
        scheme = PairwiseScheme(10)
        for index in range(scheme.pool_size):
            assert dep.registry.holders(index) == scheme.holders(index)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_deployment(num_nodes=10, key_scheme="quantum")

    def test_honest_min_query(self):
        dep = build_deployment(num_nodes=15, seed=4, key_scheme="pairwise")
        protocol = VMATProtocol(dep.network)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[9] = 2.0
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result
        assert result.estimate == 2.0


class TestPairwisePinpointing:
    def _attacked(self, predtest="deny"):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=4,
            key_scheme="pairwise",
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest=predtest), seed=4)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        return dep, protocol, readings

    def test_dropper_pinpointed_with_exact_link_key(self):
        dep, protocol, readings = self._attacked()
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        scheme = PairwiseScheme(8)
        # The revoked key is precisely the link key of the dropped hop.
        assert result.pinpoint.blamed_key == scheme.pair_index(3, 4)
        assert_only_malicious_revoked(dep, {3})

    def test_fewer_tests_than_random_rings(self):
        """Holders of any pairwise key number at most two, so Figure 6's
        binary search is nearly constant-time."""
        dep, protocol, readings = self._attacked()
        result = protocol.execute(MinQuery(), readings)
        # Trail of ~4 steps, each step ~ log2(7)+1 ring tests + <=4
        # holder tests.
        assert result.pinpoint.tests_run <= result.pinpoint.steps * 9 + 4

    def test_framing_impossible_with_theta_above_f(self):
        """The analytic Figure-7 counterpart: an honest sensor shares
        exactly f pairwise keys with an f-sensor adversary, so θ = f + 1
        guarantees zero mis-revocation, ever."""
        dep, protocol, readings = self._attacked()
        dep.registry.revocation.theta = 2  # f = 1, so θ = 2 is safe
        for _ in range(30):
            result = protocol.execute(MinQuery(), readings)
            if result.produced_result:
                break
        assert_only_malicious_revoked(dep, {3})
