"""repro.perf: LRU cache semantics, the bench harness, payload gating."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError, ReproError
from repro.perf.bench import (
    MicroBench,
    _run_micro,
    compare_bench_payloads,
    run_bench,
)
from repro.perf.cache import (
    LRUCache,
    cache_stats,
    caching_enabled,
    clear_caches,
    disabled,
    registered_caches,
    set_caching,
)


@pytest.fixture(autouse=True)
def _clean_state():
    set_caching(True)
    clear_caches()
    yield
    set_caching(True)
    clear_caches()


def _fresh_cache(name: str, maxsize: int) -> LRUCache:
    # The registry rejects duplicate names; tests get unique ones.
    return LRUCache(f"test-{name}-{id(object())}", maxsize=maxsize)


class TestLRUCache:
    def test_bounded_eviction_is_lru(self):
        cache = _fresh_cache("evict", 2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_existing_key_updates_without_eviction(self):
        cache = _fresh_cache("update", 2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert cache.get("b") == 2
        assert cache.evictions == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ConfigError):
            LRUCache("test-bad-maxsize", maxsize=0)

    def test_duplicate_name_rejected(self):
        cache = _fresh_cache("dup", 4)
        with pytest.raises(ConfigError):
            LRUCache(cache.name, maxsize=4)

    def test_stats_counts_hits_misses(self):
        cache = _fresh_cache("stats", 4)
        assert cache.get("missing") is None
        cache.put("k", b"v")
        assert cache.get("k") == b"v"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert cache.name in registered_caches()
        assert cache_stats()[cache.name] == stats

    def test_disable_clears_and_bypasses(self):
        cache = _fresh_cache("disable", 4)
        cache.put("k", b"v")
        set_caching(False)
        assert not caching_enabled()
        assert cache.get("k") is None  # cleared, and get is a no-op
        cache.put("k", b"v")
        assert len(cache) == 0  # put is a no-op too
        set_caching(True)
        assert cache.get("k") is None  # re-enabling starts cold

    def test_disabled_context_restores_previous_state(self):
        assert caching_enabled()
        with disabled():
            assert not caching_enabled()
            with disabled():
                assert not caching_enabled()
            assert not caching_enabled()  # inner exit keeps outer's False
        assert caching_enabled()

    def test_view_tracks_disable_in_place(self):
        """The raw view must never serve stale entries: disabling clears
        the backing dict *in place*, and put stays a no-op."""
        cache = _fresh_cache("view", 4)
        view = cache.view()
        cache.put("k", b"v")
        assert view.get("k") == b"v"
        set_caching(False)
        assert view.get("k") is None
        cache.put("k", b"v")
        assert view.get("k") is None
        set_caching(True)
        cache.put("k", b"v2")
        assert view.get("k") == b"v2"


class TestMicroHarness:
    def test_refuses_to_time_nonidentical_outputs(self):
        bench = MicroBench(
            name="broken",
            kind="crypto",
            ops_per_round=1,
            reference=lambda: b"a",
            optimized=lambda: b"b",
        )
        with pytest.raises(ReproError, match="bit-identical"):
            _run_micro(bench, repeat=1)

    def test_times_identical_outputs(self):
        bench = MicroBench(
            name="ok",
            kind="structural",
            ops_per_round=10,
            reference=lambda: [i * 2 for i in range(100)],
            optimized=lambda: [i * 2 for i in range(100)],
        )
        result = _run_micro(bench, repeat=2)
        assert result.name == "ok"
        assert result.ref_us > 0 and result.opt_us > 0
        assert result.speedup > 0

    def test_run_bench_rejects_bad_params(self):
        with pytest.raises(ReproError):
            run_bench(repeat=0)
        with pytest.raises(ReproError):
            run_bench(scale=0)


class TestFullBench:
    @pytest.fixture(scope="class")
    def report(self):
        # One tiny-but-real run shared by the assertions below.
        set_caching(True)
        clear_caches()
        return run_bench(repeat=1, scale=2, profile=True, profile_top=5)

    def test_all_benches_bit_identical_and_positive(self, report):
        assert report.micro, "micro suite is empty"
        kinds = {r.kind for r in report.micro}
        assert kinds == {"crypto", "primitive", "structural"}
        for r in report.micro:
            assert r.ref_us > 0 and r.opt_us > 0, r.name

    def test_e2e_cells_bit_identical(self, report):
        assert {r.cell for r in report.e2e} == {"fig7", "fig8", "chaos"}
        assert all(r.metrics_equal for r in report.e2e)
        assert report.e2e_cells_per_sec_opt > 0
        assert report.e2e_cells_per_sec_ref > 0

    def test_profile_table_present_when_requested(self, report):
        assert report.profile_table is not None
        assert "hotspots" in report.profile_table

    def test_payload_and_render_shapes(self, report):
        payload = report.payload()
        assert set(payload) >= {"micro", "e2e", "e2e_cells_per_sec", "cache_stats"}
        json.dumps(payload)  # must be JSON-serializable as-is
        text = report.render()
        assert "e2e throughput" in text
        for r in report.micro:
            assert r.name in text

    def test_profile_disabled_means_no_profiler(self):
        set_caching(True)
        clear_caches()
        report = run_bench(repeat=1, scale=1, profile=False)
        assert report.profile_table is None


class TestComparePayloads:
    BASE = {
        "micro": {"compute_mac": {"kind": "primitive", "speedup": 2.5}},
        "e2e": {"chaos": {"speedup": 1.4, "metrics_equal": True}},
    }

    def test_equal_payload_passes(self):
        report = compare_bench_payloads(self.BASE, self.BASE, threshold=0.5)
        assert report.passed
        assert report.compared == 2

    def test_speedup_gain_passes_one_sided(self):
        new = {
            "micro": {"compute_mac": {"kind": "primitive", "speedup": 9.9}},
            "e2e": {"chaos": {"speedup": 5.0, "metrics_equal": True}},
        }
        assert compare_bench_payloads(self.BASE, new, threshold=0.5).passed

    def test_large_drop_fails(self):
        new = {
            "micro": {"compute_mac": {"kind": "primitive", "speedup": 1.0}},
            "e2e": {"chaos": {"speedup": 1.4, "metrics_equal": True}},
        }
        report = compare_bench_payloads(self.BASE, new, threshold=0.5)
        assert not report.passed
        assert report.regressions[0].group == "micro:compute_mac"

    def test_missing_bench_fails(self):
        new = {"micro": {}, "e2e": dict(self.BASE["e2e"])}
        report = compare_bench_payloads(self.BASE, new, threshold=0.5)
        assert not report.passed
        assert "micro:compute_mac" in report.missing_groups

    def test_broken_bit_identity_fails_regardless_of_speed(self):
        new = {
            "micro": dict(self.BASE["micro"]),
            "e2e": {"chaos": {"speedup": 99.0, "metrics_equal": False}},
        }
        report = compare_bench_payloads(self.BASE, new, threshold=0.5)
        assert not report.passed
        assert any(r.metric == "metrics_equal" for r in report.regressions)


class TestCli:
    def test_bench_writes_payload_and_self_compares(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        # --output is written before --compare reads it, so one
        # invocation exercises both paths; comparing a payload against
        # itself must always pass the gate (timing noise at this tiny
        # scale would make a two-invocation comparison flaky).
        assert main([
            "bench", "--repeat", "1", "--scale", "1", "--quiet",
            "--output", str(out), "--compare", str(out), "--threshold", "0.5",
        ]) == 0
        payload = json.loads(out.read_text())
        assert "micro" in payload and "e2e" in payload
        captured = capsys.readouterr().out
        assert "e2e throughput" in captured
        assert "PASS" in captured

    def test_bench_compare_missing_baseline_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main([
            "bench", "--repeat", "1", "--scale", "1", "--quiet",
            "--compare", str(missing),
        ]) == 1
        assert "cannot read baseline" in capsys.readouterr().out
