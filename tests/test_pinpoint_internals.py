"""Unit tests of the pinpointing binary searches with a scripted test
oracle — every failure branch of Figures 5 and 6, deterministically.

The searches only interact with the world through
``Pinpointer._test(key_ref, predicate)``; stubbing that method lets us
script arbitrary (adversarial) answer sequences and check each decision
branch without running the network."""

from __future__ import annotations

from typing import Callable, List, Tuple

import pytest

from repro import build_deployment, small_test_config
from repro.core.pinpoint import Pinpointer
from repro.core.predicate_test import AggForwarded, AggReceived
from repro.crypto.nonce import NonceSource


@pytest.fixture
def pinpointer():
    dep = build_deployment(num_nodes=12, seed=5)
    pin = Pinpointer(dep.network, None, depth_bound=8, nonce_source=NonceSource(b"t"))
    return dep, pin


def script(pin, answer: Callable[[Tuple[str, int], object], bool]):
    """Replace the network round-trip with a deterministic oracle."""
    calls: List[Tuple[Tuple[str, int], object]] = []

    def fake_test(key_ref, predicate):
        calls.append((key_ref, predicate))
        return answer(key_ref, predicate)

    pin._test = fake_test  # type: ignore[method-assign]
    return calls


class TestRingBinarySearch:
    def test_finds_the_single_satisfying_key(self, pinpointer):
        dep, pin = pinpointer
        ring = dep.registry.ring(3).indices
        target = ring[len(ring) // 3]

        calls = script(
            pin, lambda ref, p: p.key_low <= target <= p.key_high
        )
        found = pin._ring_binary_search(
            3, lambda low, high: AggForwarded(1, 5.0, low, high)
        )
        assert found == target
        # log2(|ring|) + final confirm
        import math

        assert len(calls) <= math.ceil(math.log2(len(ring))) + 1

    def test_all_no_answers_returns_none(self, pinpointer):
        dep, pin = pinpointer
        script(pin, lambda ref, p: False)
        assert pin._ring_binary_search(
            3, lambda low, high: AggForwarded(1, 5.0, low, high)
        ) is None

    def test_inconsistent_yes_then_refuse_confirm_returns_none(self, pinpointer):
        dep, pin = pinpointer
        # Say yes to wide ranges, no to the final single-key confirm.
        script(pin, lambda ref, p: p.key_low != p.key_high)
        assert pin._ring_binary_search(
            3, lambda low, high: AggForwarded(1, 5.0, low, high)
        ) is None

    def test_revoked_keys_excluded_from_domain(self, pinpointer):
        dep, pin = pinpointer
        ring = dep.registry.ring(3).indices
        target = ring[0]
        dep.registry.revoke_key(target, reason="test")
        seen_ranges = []

        def answer(ref, p):
            seen_ranges.append((p.key_low, p.key_high))
            return p.key_low <= target <= p.key_high

        script(pin, answer)
        found = pin._ring_binary_search(
            3, lambda low, high: AggForwarded(1, 5.0, low, high)
        )
        # The revoked key can no longer be identified; the search must
        # not even consider it (converges elsewhere, confirm fails).
        assert found != target

    def test_empty_domain_returns_none(self, pinpointer):
        dep, pin = pinpointer
        for index in dep.registry.ring(3).indices:
            dep.registry.revocation._apply_key(index, exposed=False)
        script(pin, lambda ref, p: True)
        assert pin._ring_binary_search(
            3, lambda low, high: AggForwarded(1, 5.0, low, high)
        ) is None


class TestHoldersBinarySearch:
    def _shared_key(self, dep):
        """A pool key with at least 3 sensor holders (for real searches)."""
        for index in range(dep.config.keys.pool_size):
            if len(dep.registry.holders(index)) >= 3:
                return index
        pytest.skip("test config yielded no 3-holder key")

    def make_predicate(self, key):
        return lambda lo, hi: AggReceived(lo, hi, 5.0, 2, key)

    def test_finds_truthful_admitter(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        holders = dep.registry.holders(key)
        admitter = holders[-1]

        def answer(ref, p):
            if ref[0] == "sensor":
                return ref[1] == admitter
            return p.id_low <= admitter <= p.id_high

        script(pin, answer)
        assert pin._holders_binary_search(key, self.make_predicate(key)) == admitter

    def test_step2_nobody_admits(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        calls = script(pin, lambda ref, p: False)
        assert pin._holders_binary_search(key, self.make_predicate(key)) is None
        assert len(calls) == 1  # fails straight at step 2

    def test_step12_inconsistent_halves(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        holders = dep.registry.holders(key)

        def answer(ref, p):
            # Admit on the full range, then deny both halves.
            return (p.id_low, p.id_high) == (holders[0], holders[-1])

        script(pin, answer)
        assert pin._holders_binary_search(key, self.make_predicate(key)) is None

    def test_step6_confirm_failure(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        holders = dep.registry.holders(key)
        liar = holders[0]

        def answer(ref, p):
            if ref[0] == "sensor":
                return False  # the candidate refuses to re-confirm
            return p.id_low <= liar <= p.id_high

        script(pin, answer)
        assert pin._holders_binary_search(key, self.make_predicate(key)) is None

    def test_revoked_sensors_excluded(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        holders = dep.registry.holders(key)
        dep.registry.revoke_sensor(holders[0], reason="test")
        admitter = holders[-1]

        def answer(ref, p):
            if ref[0] == "sensor":
                return ref[1] == admitter
            return p.id_low <= admitter <= p.id_high

        script(pin, answer)
        # Still finds the live admitter, never consulting the revoked id.
        assert pin._holders_binary_search(key, self.make_predicate(key)) == admitter

    def test_no_unrevoked_holders_returns_none(self, pinpointer):
        dep, pin = pinpointer
        key = self._shared_key(dep)
        for holder in dep.registry.holders(key):
            dep.registry.revocation._revoked_sensors.add(holder)
        script(pin, lambda ref, p: True)
        assert pin._holders_binary_search(key, self.make_predicate(key)) is None
