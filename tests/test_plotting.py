"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis import ascii_chart
from repro.errors import ConfigError


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"s": [(0, 0), (1, 1), (2, 4)]}, title="t", x_label="x", y_label="y"
        )
        assert "t" in chart
        assert "o s" in chart  # legend with marker
        assert chart.count("o") >= 3  # all points drawn (plus legend)

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o a" in chart and "x b" in chart

    def test_log_x_axis_labels(self):
        chart = ascii_chart({"s": [(10, 1), (1000, 2)]}, log_x=True)
        assert "10" in chart and "1e+03" in chart

    def test_log_scale_drops_nonpositive(self):
        chart = ascii_chart({"s": [(0, 1), (10, 2)]}, log_x=True)
        assert "dropped" in chart

    def test_all_points_dropped_raises(self):
        with pytest.raises(ConfigError):
            ascii_chart({"s": [(0, 1)]}, log_x=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigError):
            ascii_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigError):
            ascii_chart({"s": [(0, 0)]}, width=5)

    def test_degenerate_single_point(self):
        chart = ascii_chart({"s": [(3, 7)]})
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_chart({"s": [(0, 0), (1, 1)]}, width=30, height=8, title="T")
        data_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(data_rows) == 8


class TestCliPlots:
    def test_fig8_plot_flag(self, capsys):
        from repro.cli import main

        main(["fig8", "--counts", "10", "100", "--trials", "20", "--plot"])
        out = capsys.readouterr().out
        assert "rel error" in out
        assert "predicate count" in out

    def test_connectivity_plot_flag(self, capsys):
        from repro.cli import main

        main(["connectivity", "--nodes", "40", "--plot"])
        out = capsys.readouterr().out
        assert "Connectivity collapse" in out
