"""Global protocol invariants under randomized adversaries (hypothesis).

These are the paper's theorems stated as executable properties and
fuzzed over topology seeds, adversary placement, strategy choice and
predicate-test policy:

* **Safety (Lemmas 4/5)** — no honest sensor is ever revoked; every
  revoked key belongs to the adversary's loot.
* **Correctness (Theorem 2)** — any returned MIN result w satisfies
  ``overall_min <= w <= honest_min``.
* **Progress (Theorems 6/7)** — an execution either returns a result or
  revokes at least one key.
* **Termination** — sessions end within the bound implied by the
  adversary's finite key material.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import (
    Adversary,
    ChokingFloodStrategy,
    DropMinimumStrategy,
    HideAndVetoStrategy,
    JunkMinimumStrategy,
    PassiveStrategy,
    SpuriousVetoStrategy,
)
from repro.topology import grid_topology

from tests.conftest import assert_only_malicious_revoked

STRATEGY_MAKERS = [
    lambda policy: PassiveStrategy(predtest=policy),
    lambda policy: DropMinimumStrategy(predtest=policy),
    lambda policy: HideAndVetoStrategy(predtest=policy),
    lambda policy: JunkMinimumStrategy(predtest=policy),
    lambda policy: SpuriousVetoStrategy(predtest=policy),
    lambda policy: ChokingFloodStrategy(predtest=policy),
]

POLICIES = ["truthful", "deny", "lie_yes", "coin"]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    strategy_index=st.integers(0, len(STRATEGY_MAKERS) - 1),
    policy=st.sampled_from(POLICIES),
    malicious=st.sets(st.integers(1, 15), min_size=1, max_size=3),
    min_holder=st.integers(1, 15),
)
def test_single_execution_invariants(seed, strategy_index, policy, malicious, min_holder):
    dep = build_deployment(
        config=small_test_config(depth_bound=10),
        topology=grid_topology(4, 4),
        malicious_ids=malicious,
        seed=seed,
    )
    strategy = STRATEGY_MAKERS[strategy_index](policy)
    adv = Adversary(dep.network, strategy, seed=seed)
    protocol = VMATProtocol(dep.network, adversary=adv)

    readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
    readings[min_holder] = 1.0
    result = protocol.execute(MinQuery(), readings)

    # Safety: never any honest collateral.
    assert_only_malicious_revoked(dep, malicious)

    # Progress: result or revocation, never neither.
    assert result.produced_result or result.revocations

    # Correctness of returned results (Theorem 2).
    if result.produced_result:
        assert result.overall_true_value <= result.estimate <= result.honest_true_value

    # Cost: the pre-pinpointing part is O(1) flooding rounds, and the
    # whole execution is bounded by O(L log n) (Theorem 7).
    assert result.flooding_rounds <= 6.0 + 2.5 * (
        result.pinpoint.tests_run if result.pinpoint else 0
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 1_000),
    policy=st.sampled_from(POLICIES),
    malicious=st.sets(st.integers(1, 15), min_size=1, max_size=2),
)
def test_session_terminates_with_a_result(seed, policy, malicious):
    dep = build_deployment(
        config=small_test_config(depth_bound=10),
        topology=grid_topology(4, 4),
        malicious_ids=malicious,
        seed=seed,
    )
    adv = Adversary(dep.network, DropMinimumStrategy(predtest=policy), seed=seed)
    protocol = VMATProtocol(dep.network, adversary=adv)
    readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
    readings[15] = 1.0

    session = protocol.run_session(MinQuery(), readings, max_executions=400)
    assert session.final_estimate is not None
    assert_only_malicious_revoked(dep, malicious)
    # Termination bound: each failed execution revokes >= 1 adversary
    # key, and the adversary's loot is finite.
    assert session.executions_until_result <= len(dep.network.adversary_pool_indices()) + 1


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1_000), malicious=st.sets(st.integers(1, 15), min_size=1, max_size=3))
def test_passive_compromise_is_invisible(seed, malicious):
    """Compromise without deviation must not change anything."""
    dep = build_deployment(
        config=small_test_config(depth_bound=10),
        topology=grid_topology(4, 4),
        malicious_ids=malicious,
        seed=seed,
    )
    adv = Adversary(dep.network, PassiveStrategy(), seed=seed)
    protocol = VMATProtocol(dep.network, adversary=adv)
    readings = {i: 100.0 + i for i in dep.topology.sensor_ids}
    result = protocol.execute(MinQuery(), readings)
    assert result.produced_result
    assert result.estimate == min(readings.values())
    assert not result.revocations
