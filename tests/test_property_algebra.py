"""Seeded randomized property tests: merge algebra and spec stability.

Two families of properties the subsystems rely on but no example-based
test can pin down:

* :meth:`repro.metrics.Metrics.merge` is the fold the campaign runner
  and session driver use to accumulate executions — it must behave like
  a monoid (identity, associativity) and be commutative up to
  ``round_log`` order (the log is an append-ordered trace, so
  commutativity holds on the multiset of entries, not their order);
* :class:`~repro.faults.FaultPlan` and
  :class:`~repro.campaign.spec.CampaignSpec` hash and round-trip
  **by content**: reordering the keys of their JSON encodings must
  produce the same object, the same canonical JSON and the same derived
  seeds (the stores commit these hashes; a key-order dependence would
  silently fork every committed run id).

All randomness is seeded through :mod:`repro.seeding` so failures
reproduce exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import CampaignSpec, derive_cell_seed
from repro.faults import FaultPlan, chaos_plan
from repro.metrics import Metrics
from repro.seeding import canonical_json, derive_rng

# ----------------------------------------------------------------------
# Random generators (all deterministic in the test's seed)
# ----------------------------------------------------------------------

_FAULT_KINDS = ("crash", "partition", "burst-loss", "clock-drift")
_ROUND_LABELS = ("authenticated-broadcast", "keyed-predicate-test", "aggregation", "")


def random_metrics(seed: int) -> Metrics:
    rng = derive_rng("metrics-algebra", seed)
    metrics = Metrics()
    for _ in range(rng.randint(0, 12)):
        metrics.record_transmission(
            rng.randint(0, 9), rng.randint(0, 9), rng.randint(1, 64)
        )
    for _ in range(rng.randint(0, 4)):
        metrics.record_flooding_rounds(
            float(rng.randint(1, 3)), rng.choice(_ROUND_LABELS)
        )
    for _ in range(rng.randint(0, 3)):
        metrics.record_predicate_test()
    for _ in range(rng.randint(0, 3)):
        metrics.record_authenticated_broadcast()
    for _ in range(rng.randint(0, 3)):
        metrics.record_lost_transmission(rng.randint(0, 9), rng.randint(1, 64))
    for _ in range(rng.randint(0, 5)):
        metrics.record_fault(rng.choice(_FAULT_KINDS), rng.randint(1, 3))
    metrics.record_intervals(rng.randint(0, 20))
    metrics.record_crash_intervals(rng.randint(0, 8))
    metrics.record_partition_intervals(rng.randint(0, 8))
    return metrics


def copy_of(metrics: Metrics) -> Metrics:
    return Metrics.from_dict(metrics.to_dict())


def merged(a: Metrics, b: Metrics) -> Metrics:
    result = copy_of(a)
    result.merge(copy_of(b))
    return result


def order_insensitive_view(metrics: Metrics) -> dict:
    """``to_dict`` with the append-ordered round log sorted away."""
    data = metrics.to_dict()
    data["round_log"] = sorted(tuple(entry) for entry in data["round_log"])
    return data


# ----------------------------------------------------------------------
# Metrics merge algebra
# ----------------------------------------------------------------------
class TestMetricsMergeAlgebra:
    @pytest.mark.parametrize("seed", range(20))
    def test_identity(self, seed: int) -> None:
        """Fresh Metrics is a two-sided identity for merge."""
        m = random_metrics(seed)
        assert merged(m, Metrics()).to_dict() == m.to_dict()
        assert merged(Metrics(), m).to_dict() == m.to_dict()

    @pytest.mark.parametrize("seed", range(20))
    def test_commutative_up_to_log_order(self, seed: int) -> None:
        a, b = random_metrics(seed), random_metrics(seed + 1000)
        assert order_insensitive_view(merged(a, b)) == order_insensitive_view(
            merged(b, a)
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_associative_exactly(self, seed: int) -> None:
        """(a+b)+c == a+(b+c) including round_log order."""
        a = random_metrics(seed)
        b = random_metrics(seed + 1000)
        c = random_metrics(seed + 2000)
        assert merged(merged(a, b), c).to_dict() == merged(a, merged(b, c)).to_dict()

    @pytest.mark.parametrize("seed", range(10))
    def test_merge_does_not_mutate_operand(self, seed: int) -> None:
        a, b = random_metrics(seed), random_metrics(seed + 1000)
        before = b.to_dict()
        target = copy_of(a)
        target.merge(b)
        assert b.to_dict() == before

    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_lossless(self, seed: int) -> None:
        m = random_metrics(seed)
        assert copy_of(m).to_dict() == m.to_dict()
        assert copy_of(m).summary() == m.summary()


# ----------------------------------------------------------------------
# JSON round-trip stability under key reordering
# ----------------------------------------------------------------------

def reorder_keys(value, rng):
    """Recursively shuffle the key order of every JSON object."""
    if isinstance(value, dict):
        items = [(k, reorder_keys(v, rng)) for k, v in value.items()]
        rng.shuffle(items)
        return dict(items)
    if isinstance(value, list):
        return [reorder_keys(v, rng) for v in value]
    return value


class TestFaultPlanKeyOrderStability:
    @pytest.mark.parametrize("profile", ["crash", "partition", "burst", "clock", "mixed"])
    def test_reordered_json_same_plan_and_hash(self, profile: str) -> None:
        plan = chaos_plan(profile, num_nodes=12, depth_bound=6, seed=3, executions=2)
        rng = derive_rng("plan-reorder", profile)
        scrambled = json.dumps(reorder_keys(plan.to_dict(), rng))
        reparsed = FaultPlan.from_json(scrambled)
        assert reparsed == plan
        assert reparsed.plan_hash() == plan.plan_hash()
        assert canonical_json(reparsed.to_dict()) == canonical_json(plan.to_dict())


class TestCampaignSpecKeyOrderStability:
    def make_spec(self) -> CampaignSpec:
        from repro.campaign import ScenarioSpec

        return CampaignSpec(
            name="algebra",
            scenarios=(
                ScenarioSpec(scenario="fig7", grid={
                    "nodes": (300,), "malicious": (1, 3), "trials": (5,),
                    "theta_max": (12,),
                }),
                ScenarioSpec(scenario="chaos", grid={
                    "nodes": (16,), "profile": ("crash", "mixed"),
                    "executions": (2,),
                }),
            ),
            seed=11,
            replicates=2,
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_reordered_json_same_spec_hash_and_cells(self, seed: int) -> None:
        spec = self.make_spec()
        rng = derive_rng("spec-reorder", seed)
        scrambled = json.dumps(reorder_keys(spec.to_dict(), rng))
        reparsed = CampaignSpec.from_json(scrambled)
        assert reparsed.spec_hash() == spec.spec_hash()
        assert [c.cell_id for c in reparsed.cells()] == [
            c.cell_id for c in spec.cells()
        ]
        assert [c.seed for c in reparsed.cells()] == [c.seed for c in spec.cells()]

    def test_cell_seed_is_param_order_free(self) -> None:
        params_a = {"nodes": 300, "malicious": 1, "trials": 5}
        params_b = {"trials": 5, "nodes": 300, "malicious": 1}
        assert derive_cell_seed(7, "fig7", params_a) == derive_cell_seed(
            7, "fig7", params_b
        )
