"""Protocol conformance: the slotted timing discipline, checked from the
trace of a real execution.

These tests pin the interval arithmetic the proofs rely on — who
transmits in which interval of which phase — using the structured event
log rather than internal state, i.e. they observe the protocol the way
an on-air sniffer would."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.topology import line_topology
from repro.tracing import Tracer

DEPTH = 12


@pytest.fixture
def traced_line_run():
    dep = build_deployment(
        config=small_test_config(depth_bound=DEPTH),
        topology=line_topology(7),
        seed=9,
    )
    tracer = Tracer.attach(dep.network)
    protocol = VMATProtocol(dep.network)
    readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
    readings[6] = 2.0  # vetoless happy path: 2.0 propagates and wins
    result = protocol.execute(MinQuery(), readings)
    assert result.produced_result and result.estimate == 2.0
    return dep, tracer


def sends_by(tracer, phase):
    grouped = defaultdict(list)
    for event in tracer.where("transmission", phase=phase):
        grouped[event.fields["sender"]].append(event.fields["interval"])
    return grouped


class TestTreeTiming:
    def test_beacon_wavefront_is_one_interval_per_hop(self, traced_line_run):
        dep, tracer = traced_line_run
        sends = sends_by(tracer, "tree")
        # On the line 0-1-...-6: the BS transmits in interval 1, node i
        # in interval i+1 (it heard the beacon in interval i).  A node
        # emits one frame per neighbour, all in its forwarding interval.
        assert set(sends[0]) == {1}
        for node in range(1, 7):
            assert set(sends[node]) == {node + 1}, f"node {node}"

    def test_deepest_node_does_not_forward_past_L(self, traced_line_run):
        dep, tracer = traced_line_run
        sends = sends_by(tracer, "tree")
        for node, intervals in sends.items():
            assert all(1 <= k <= DEPTH for k in intervals)


class TestAggregationTiming:
    def test_level_i_transmits_in_interval_L_minus_i_plus_1(self, traced_line_run):
        dep, tracer = traced_line_run
        sends = sends_by(tracer, "aggregation")
        for node in range(1, 7):
            level = node  # on the line, level == depth == id
            assert sends[node] == [DEPTH - level + 1], f"node {node}"

    def test_each_sensor_transmits_exactly_one_bundle(self, traced_line_run):
        dep, tracer = traced_line_run
        sends = sends_by(tracer, "aggregation")
        assert all(len(intervals) == 1 for intervals in sends.values())

    def test_bundles_flow_toward_the_base_station(self, traced_line_run):
        dep, tracer = traced_line_run
        for event in tracer.where("transmission", phase="aggregation"):
            assert event.fields["receiver"] == event.fields["sender"] - 1

    def test_all_aggregation_frames_verified(self, traced_line_run):
        dep, tracer = traced_line_run
        assert all(
            e.fields["verified"]
            for e in tracer.where("transmission", phase="aggregation")
        )


class TestConfirmationTiming:
    def test_happy_path_has_no_vetoes(self, traced_line_run):
        dep, tracer = traced_line_run
        assert tracer.where("transmission", phase="confirmation") == []

    def test_veto_wavefront_when_minimum_is_dropped(self):
        from repro.adversary import Adversary, DropMinimumStrategy

        dep = build_deployment(
            config=small_test_config(depth_bound=DEPTH),
            topology=line_topology(7),
            malicious_ids={3},
            seed=9,
        )
        tracer = Tracer.attach(dep.network)
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=9)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in dep.topology.sensor_ids}
        readings[6] = 2.0
        protocol.execute(MinQuery(), readings)
        sends = sends_by(tracer, "confirmation")
        # The vetoer (node 6) floods in interval 1; each hop toward the
        # BS forwards one interval later (SOF slotting).
        assert 1 in sends[6]
        assert 2 in sends[5]
        assert 3 in sends[4]

    def test_announcements_precede_each_phase(self, traced_line_run):
        dep, tracer = traced_line_run
        kinds = [e.kind for e in tracer.events]
        first_tx = kinds.index("transmission")
        # The query + tree announcements (authenticated broadcasts) all
        # happen before any link-layer frame moves.
        broadcasts_before = kinds[:first_tx].count("authenticated-broadcast")
        assert broadcasts_before >= 2
