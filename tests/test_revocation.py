"""Revocation state and the θ-threshold rule (Section VI-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RevocationError
from repro.keys.revocation import RevocationState


def make_state(rings, theta=None, cascade=False):
    return RevocationState(rings, theta=theta, cascade=cascade)


class TestBasicRevocation:
    def test_revoke_key_marks_and_counts(self):
        state = make_state({1: [10, 11], 2: [11, 12]})
        events = state.revoke_key(11)
        assert state.is_key_revoked(11)
        assert state.revoked_ring_count(1) == 1
        assert state.revoked_ring_count(2) == 1
        assert [e.kind for e in events] == ["key"]

    def test_revoke_key_idempotent(self):
        state = make_state({1: [10]})
        state.revoke_key(10)
        assert state.revoke_key(10) == []

    def test_revoke_sensor_revokes_whole_ring(self):
        state = make_state({1: [10, 11, 12], 2: [12, 13]})
        events = state.revoke_sensor(1)
        assert state.is_sensor_revoked(1)
        assert state.revoked_keys == {10, 11, 12}
        kinds = [e.kind for e in events]
        assert kinds.count("sensor") == 1 and kinds.count("key") == 3

    def test_revoke_sensor_idempotent(self):
        state = make_state({1: [10]})
        state.revoke_sensor(1)
        assert state.revoke_sensor(1) == []

    def test_unknown_sensor_rejected(self):
        state = make_state({1: [10]})
        with pytest.raises(RevocationError):
            state.revoke_sensor(99)
        with pytest.raises(RevocationError):
            state.revoked_ring_count(99)

    def test_holders_of(self):
        state = make_state({3: [10], 1: [10], 2: [11]})
        assert state.holders_of(10) == (1, 3)
        assert state.holders_of(999) == ()

    def test_log_records_everything(self):
        state = make_state({1: [10, 11]})
        state.revoke_key(10, reason="test-a")
        state.revoke_sensor(1, reason="test-b")
        reasons = [e.reason for e in state.log]
        assert "test-a" in reasons and "test-b" in reasons


class TestThresholdRule:
    def test_sensor_revoked_at_theta(self):
        state = make_state({1: [10, 11, 12]}, theta=2)
        state.revoke_key(10)
        assert not state.is_sensor_revoked(1)
        events = state.revoke_key(11)
        assert state.is_sensor_revoked(1)
        assert any(e.kind == "sensor" and e.target == 1 for e in events)
        # the ring remainder is revoked too
        assert state.is_key_revoked(12)

    def test_threshold_event_names_trigger_key(self):
        state = make_state({1: [10, 11]}, theta=2)
        state.revoke_key(10)
        events = state.revoke_key(11)
        sensor_event = next(e for e in events if e.kind == "sensor")
        assert sensor_event.triggered_by_key == 11
        assert "theta" in sensor_event.reason

    def test_no_threshold_when_disabled(self):
        state = make_state({1: [10, 11]}, theta=None)
        state.revoke_key(10)
        state.revoke_key(11)
        assert not state.is_sensor_revoked(1)
        assert state.threshold_pending() == set()

    def test_no_cascade_by_default(self):
        # Revoking sensor 1's whole ring is bookkeeping, not evidence:
        # sensor 2's exposed count stays 0 and it survives, now and in
        # any later threshold pass.
        state = make_state({1: [10, 11, 12], 2: [11, 12, 13]}, theta=2)
        state.revoke_sensor(1)
        assert not state.is_sensor_revoked(2)
        assert state.revoked_ring_count(2) == 2
        assert state.exposed_ring_count(2) == 0
        assert state.threshold_pending() == set()
        # A later individual revocation elsewhere must not sweep 2 up.
        state.revoke_key(20)
        assert not state.is_sensor_revoked(2)

    def test_exposed_keys_still_frame_honest_sensors(self):
        # The true Figure-7 framing risk: keys individually revoked in
        # attacks DO count for every holder, so an honest sensor sharing
        # >= θ exposed keys with the adversary is mis-revoked.
        state = make_state({1: [10, 11, 12], 2: [11, 12, 13]}, theta=2)
        state.revoke_key(11)
        state.revoke_key(12)
        assert state.is_sensor_revoked(1)
        assert state.is_sensor_revoked(2)

    def test_cascade_propagates(self):
        state = make_state({1: [10, 11, 12], 2: [11, 12, 13]}, theta=2, cascade=True)
        state.revoke_sensor(1)
        assert state.is_sensor_revoked(2)

    def test_cascade_chains_transitively(self):
        rings = {
            1: [1, 2],
            2: [1, 2, 3],  # shares both of 1's keys -> falls, exposing 3
            3: [2, 3, 4],  # now has 2 and 3 revoked -> falls, exposing 4
            4: [3, 4, 5],  # now has 3 and 4 revoked -> falls
        }
        state = make_state(rings, theta=2, cascade=True)
        state.revoke_sensor(1)
        assert state.is_sensor_revoked(2)
        assert state.is_sensor_revoked(3)
        assert state.is_sensor_revoked(4)


    def test_direct_key_revocations_all_processed_in_one_pass(self):
        # Two sensors pushed over θ by the same key revocation.
        state = make_state({1: [10, 11], 2: [10, 11]}, theta=2)
        state.revoke_key(10)
        state.revoke_key(11)
        assert state.is_sensor_revoked(1) and state.is_sensor_revoked(2)

    def test_rejects_bad_theta(self):
        with pytest.raises(RevocationError):
            make_state({1: [1]}, theta=0)


class TestRevocationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        theta=st.integers(1, 4),
    )
    def test_threshold_invariant(self, data, theta):
        """After any sequence of key revocations, every unrevoked sensor
        is strictly below θ *unless* it crossed only via ring-induced
        revocations (no-cascade semantics)."""
        rings = {
            sensor: data.draw(
                st.lists(st.integers(0, 30), min_size=1, max_size=8, unique=True)
            )
            for sensor in range(1, 6)
        }
        state = make_state(rings, theta=theta, cascade=True)
        keys = data.draw(st.lists(st.integers(0, 30), max_size=10))
        for key in keys:
            state.revoke_key(key)
        # With cascade=True the fixed point must hold everywhere:
        assert state.threshold_pending() == set()
        # And revoked sensors' entire rings are revoked:
        for sensor in state.revoked_sensors:
            assert all(state.is_key_revoked(k) for k in rings[sensor])

    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(st.integers(0, 20), max_size=15))
    def test_counts_match_ground_truth(self, keys):
        rings = {1: [0, 1, 2, 3], 2: [2, 3, 4, 5], 3: [10, 11]}
        state = make_state(rings, theta=None)
        for key in keys:
            state.revoke_key(key)
        for sensor, ring in rings.items():
            expected = sum(1 for k in ring if state.is_key_revoked(k))
            assert state.revoked_ring_count(sensor) == expected
