"""The large-topology scale layer: batched delivery, lazy edge MACs,
interval-edge semantics, cache-stat algebra and the scale bench harness.

These tests pin the contracts the 10k-node path leans on:

* ``IntervalSchedule.interval_of`` is exact at float interval
  boundaries (consistent with ``interval_start``/``interval_end`` even
  when ``start_time`` and the interval length are not float-aligned);
* ``PhaseContext.arrival_map`` is a pure read-optimization over
  ``inbox`` — same readability gate, same membership;
* lazy edge-MAC verification is observationally identical to the eager
  reference path, including when revocations land between a frame's
  transmission and its first read;
* the incremental secure-topology view answers exactly like the
  registry-backed reference path across revocation epochs;
* engine event ordering is deterministic and ``Event`` stays slotted;
* the cache-stat algebra (merge/diff/sum) keeps honest counters across
  clears and worker processes;
* the scale bench's cell plan, payload gate and bit-identity check.
"""

from __future__ import annotations

import math

import pytest

from repro import build_deployment, small_test_config
from repro.errors import NetworkError, ReproError, SimulationError
from repro.net.message import TreeBeacon
from repro.perf.cache import (
    caching_enabled,
    clear_caches,
    diff_cache_stats,
    disabled,
    merge_cache_stats,
    sum_cache_stats,
)
from repro.perf.scale import (
    LINE_MAX_NODES,
    REFERENCE_MAX_NODES,
    SCALE_SIZES,
    compare_scale_payloads,
    grid_dims,
    reference_equality,
    scale_cells,
)
from repro.sim.engine import Event, IntervalSchedule, SimulationEngine
from repro.topology import line_topology


def beacon(origin=0, hop=1):
    return TreeBeacon(origin=origin, hop_count=hop)


# ----------------------------------------------------------------------
# IntervalSchedule float boundaries
# ----------------------------------------------------------------------
class TestIntervalBoundaries:
    @pytest.mark.parametrize(
        "start,length,num",
        [
            (0.0, 1.0, 10),
            (0.0, 0.1, 37),  # 0.1 is not representable
            (5.0, 0.1, 50),  # 5.1 - 5.0 loses a ulp in subtraction
            (3.7, 0.3, 29),
            (1e6, 0.1, 20),  # large offset, tiny interval
        ],
    )
    def test_boundaries_consistent_with_interval_start(self, start, length, num):
        s = IntervalSchedule(start, length, num)
        for k in range(1, num + 1):
            boundary = s.interval_start(k)
            assert s.interval_of(boundary) == k
            assert s.interval_of(math.nextafter(boundary, -math.inf)) == k - 1
            assert s.interval_of(s.midpoint(k)) == k
            # interval_end(k) == interval_start(k+1) bit-for-bit, so the
            # end boundary belongs to the next interval (k+1; the
            # "ignored" sentinel num+1 past the phase).
            assert s.interval_of(s.interval_end(k)) == k + 1

    def test_before_and_after_phase(self):
        s = IntervalSchedule(5.0, 0.1, 50)
        assert s.interval_of(math.nextafter(5.0, -math.inf)) == 0
        assert s.interval_of(-100.0) == 0
        assert s.interval_of(s.end_time) == s.num_intervals + 1
        assert s.interval_of(s.end_time + 1e9) == s.num_intervals + 1

    def test_monotone_over_dense_samples(self):
        s = IntervalSchedule(5.0, 0.1, 20)
        previous = 0
        time = math.nextafter(5.0, -math.inf)
        while time < s.end_time + 0.05:
            k = s.interval_of(time)
            assert k >= previous
            previous = k
            time += 0.003

    def test_unchanged_documented_semantics(self):
        # The pre-fix doctest behaviour (aligned schedules) must hold.
        s = IntervalSchedule(0.0, 1.0, 5)
        assert s.interval_of(-0.5) == 0
        assert s.interval_of(0.0) == 1
        assert s.interval_of(0.999) == 1
        assert s.interval_of(4.5) == 5
        assert s.interval_of(5.0) == 6


# ----------------------------------------------------------------------
# arrival_map and interval-edge inbox visibility (batched path)
# ----------------------------------------------------------------------
class TestArrivalMap:
    def test_future_interval_unreadable(self, line_deployment):
        phase = line_deployment.network.new_phase("t", 3)
        phase.begin_interval(1)
        with pytest.raises(NetworkError):
            phase.arrival_map(2)

    def test_empty_interval_yields_shared_empty_map(self, line_deployment):
        phase = line_deployment.network.new_phase("t", 3)
        phase.begin_interval(1)
        phase.begin_interval(2)
        first = phase.arrival_map(1)
        second = phase.arrival_map(2)
        assert not first and not second
        assert first is second  # the shared sentinel, never a fresh dict

    def test_membership_matches_inbox(self, line_deployment):
        net = line_deployment.network
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        phase.send(0, net.secure_neighbors(0), beacon(), interval=1)
        phase.send(5, net.secure_neighbors(5), beacon(origin=5), interval=1)
        arrived = phase.arrival_map(1)
        with_frames = {
            node for node in net.topology.node_ids if phase.inbox(node, 1)
        }
        assert set(arrived) == with_frames
        # Compare frame *values*: the column store materializes fresh
        # Delivery objects per read, so identity across two reads is not
        # part of the transport contract (and nothing consumes it).
        frame_key = lambda d: (d.sender, d.receiver, d.payload, d.key_index, d.interval)
        for node in arrived:
            assert [frame_key(d) for d in arrived[node]] == [
                frame_key(d) for d in phase.inbox(node, 1)
            ]

    def test_future_send_invisible_until_interval_begins(self, line_deployment):
        net = line_deployment.network
        phase = net.new_phase("t", 3)
        phase.begin_interval(1)
        assert phase.send(0, [1], beacon(), interval=2)
        with pytest.raises(NetworkError):
            phase.inbox(1, 2)
        with pytest.raises(NetworkError):
            phase.arrival_map(2)
        phase.begin_interval(2)
        assert len(phase.verified_inbox(1, 2)) == 1
        assert 1 in phase.arrival_map(2)

    def test_current_interval_send_visible_immediately(self, line_deployment):
        net = line_deployment.network
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        assert phase.send(0, [1], beacon(), interval=1)
        assert 1 in phase.arrival_map(1)
        assert len(phase.verified_inbox(1, 1)) == 1


# ----------------------------------------------------------------------
# Lazy edge-MAC verification == eager reference path
# ----------------------------------------------------------------------
class TestLazyVerification:
    def _one_frame(self, seed=7):
        deployment = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(10),
            seed=seed,
        )
        net = deployment.network
        phase = net.new_phase("t", 2)
        phase.begin_interval(1)
        assert phase.send(0, [1], beacon(), interval=1)
        (delivery,) = phase.inbox(1, 1)
        return net, phase, delivery

    def test_lazy_matches_eager_verdict(self):
        assert caching_enabled()
        net, _, lazy = self._one_frame()
        assert lazy._verified is None  # genuinely deferred
        with disabled():
            _, _, eager = self._one_frame()
            assert eager._verified is not None  # eagerly sealed
            assert lazy.verified == eager.verified is True

    def test_revocation_between_send_and_read_does_not_flip_verdict(self):
        # Eager reference: verification happened at transmit, so a key
        # revoked *after* the frame is on the air does not unverify it.
        with disabled():
            net, phase, eager = self._one_frame()
            net.registry.revoke_key(eager.key_index)
            reference_verdict = eager.verified
        assert reference_verdict is True
        # Lazy path must agree even though it reads after the revocation.
        net, phase, lazy = self._one_frame()
        assert lazy._verified is None
        net.registry.revoke_key(lazy.key_index)
        assert lazy.verified is reference_verdict

    def test_key_revoked_before_send_sealed_unverified_both_paths(self):
        def run():
            deployment = build_deployment(
                config=small_test_config(depth_bound=12),
                topology=line_topology(10),
                seed=7,
            )
            net = deployment.network
            key_index = net.edge_key_index(0, 1)
            net.registry.revoke_key(key_index)
            phase = net.new_phase("t", 2)
            phase.begin_interval(1)
            # Base station pins the now-revoked key explicitly (it holds
            # every pool key, so possession passes; acceptance must not).
            assert phase.send(0, [1], beacon(), interval=1, key_index=key_index)
            (delivery,) = phase.inbox(1, 1)
            return delivery.verified

        assert run() is False
        with disabled():
            assert run() is False

    def test_materialized_mac_still_verifies(self):
        # Reading edge_mac first forces the HMAC to exist; verified must
        # then check it for real and agree with the eager path.
        net, phase, delivery = self._one_frame()
        assert delivery._verified is None
        mac = delivery.edge_mac
        assert isinstance(mac, bytes) and len(mac) > 0
        assert delivery._verified is None  # materializing did not decide
        assert delivery.verified is True

    def test_lazy_mac_equals_eager_mac_bytes(self):
        net, phase, lazy = self._one_frame()
        with disabled():
            _, _, eager = self._one_frame()
            assert lazy.edge_mac == eager.edge_mac  # same bytes either path


# ----------------------------------------------------------------------
# Incremental secure-topology view vs the registry reference path
# ----------------------------------------------------------------------
class TestSecureViewEquivalence:
    def _assert_views_agree(self, net):
        topology = net.topology
        for a in topology.node_ids:
            with disabled():
                ref_neighbors = net.secure_neighbors(a)
            assert net.secure_neighbors(a) == ref_neighbors
            for b in topology.neighbors(a):
                with disabled():
                    ref_key = net.edge_key_index(a, b)
                    ref_usable = net.link_usable(a, b)
                assert net.edge_key_index(a, b) == ref_key
                assert net.link_usable(a, b) == ref_usable

    def test_agreement_across_revocation_epochs(self, line_deployment):
        net = line_deployment.network
        self._assert_views_agree(net)
        # Key revocation bumps the epoch; the warm view must resync.
        key_index = net.edge_key_index(3, 4)
        net.registry.revoke_key(key_index)
        self._assert_views_agree(net)
        # Sensor revocation dumps a whole ring.
        net.registry.revoke_sensor(7)
        self._assert_views_agree(net)

    def test_component_agreement_after_sensor_revocation(self, line_deployment):
        net = line_deployment.network
        net.registry.revoke_sensor(5)
        with disabled():
            reference = net.honest_secure_component()
        assert net.honest_secure_component() == reference
        # A revoked mid-line sensor cuts everything behind it off.
        assert all(node <= 4 for node in reference)


# ----------------------------------------------------------------------
# Engine determinism (satellite: step() fast path + Event slots)
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    def test_same_time_events_fire_in_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        for index in range(50):
            engine.schedule(1.0, lambda i=index: fired.append(i))
        engine.run()
        assert fired == list(range(50))

    def test_interleaved_times_fire_in_time_then_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        plan = [(2.0, "a"), (1.0, "b"), (2.0, "c"), (1.0, "d"), (3.0, "e")]
        for time, tag in plan:
            engine.schedule(time, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["b", "d", "a", "c", "e"]

    def test_event_is_slotted(self):
        event = Event(time=1.0, sequence=0, callback=lambda: None)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.extra = 1

    def test_time_hooks_fire_before_callbacks(self):
        engine = SimulationEngine()
        order = []
        engine.add_time_hook(lambda t: order.append(("hook", t)))
        engine.schedule(2.0, lambda: order.append(("event", engine.now)))
        engine.run()
        assert order == [("hook", 2.0), ("event", 2.0)]

    def test_hookless_engine_counts_events(self):
        engine = SimulationEngine()
        for index in range(10):
            engine.schedule(float(index), lambda: None)
        engine.run()
        assert engine.events_processed == 10
        assert engine.pending == 0

    def test_schedule_into_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda: None)


# ----------------------------------------------------------------------
# Cache-stat algebra (satellite: read-after-clear high-water regression)
# ----------------------------------------------------------------------
def _snap(size=0, maxsize=100, hits=0, misses=0, evictions=0):
    return {
        "size": size,
        "maxsize": maxsize,
        "hits": hits,
        "misses": misses,
        "evictions": evictions,
    }


class TestCacheStatAlgebra:
    def test_merge_keeps_high_water_size_across_clear(self):
        # The "960 hits, size 0" bug: a snapshot taken after
        # clear_caches() must not erase the size the cache reached.
        warm = {"c": _snap(size=5, hits=960, misses=40)}
        post_clear = {"c": _snap(size=0, hits=960, misses=40)}
        merged = merge_cache_stats(warm, post_clear)
        assert merged["c"]["size"] == 5
        assert merged["c"]["hits"] == 960

    def test_merge_takes_latest_cumulative_counters(self):
        early = {"c": _snap(size=2, hits=10, misses=5)}
        late = {"c": _snap(size=1, hits=25, misses=9)}
        merged = merge_cache_stats(early, late)
        assert merged["c"]["hits"] == 25
        assert merged["c"]["misses"] == 9
        assert merged["c"]["size"] == 2  # high-water, not latest

    def test_merge_adds_new_caches(self):
        merged = merge_cache_stats({"a": _snap(hits=1)}, {"b": _snap(hits=2)})
        assert set(merged) == {"a", "b"}

    def test_diff_isolates_one_cell_on_a_warm_worker(self):
        before = {"c": _snap(size=3, hits=100, misses=20)}
        after = {"c": _snap(size=4, hits=130, misses=21)}
        delta = diff_cache_stats(before, after)
        assert delta["c"]["hits"] == 30
        assert delta["c"]["misses"] == 1
        assert delta["c"]["size"] == 4  # state, carried from `after`

    def test_diff_clamps_counter_resets_to_zero(self):
        before = {"c": _snap(hits=50)}
        after = {"c": _snap(hits=10)}  # process restarted in between
        assert diff_cache_stats(before, after)["c"]["hits"] == 0

    def test_sum_accumulates_worker_deltas(self):
        total = {}
        for delta in (
            {"c": _snap(size=2, hits=30, misses=3)},
            {"c": _snap(size=5, hits=10, misses=1)},
            {"c": _snap(size=1, hits=5, misses=0)},
        ):
            total = sum_cache_stats(total, delta)
        assert total["c"]["hits"] == 45
        assert total["c"]["misses"] == 4
        assert total["c"]["size"] == 5  # high-water across cells
        assert total["c"]["maxsize"] == 100


# ----------------------------------------------------------------------
# The scale bench harness
# ----------------------------------------------------------------------
class TestScaleHarness:
    def test_grid_dims_for_sweep_sizes(self):
        assert grid_dims(100) == (10, 10)
        assert grid_dims(1_000) == (25, 40)
        assert grid_dims(10_000) == (100, 100)
        assert grid_dims(12) == (3, 4)

    def test_grid_dims_rejects_degenerate_primes(self):
        with pytest.raises(ReproError):
            grid_dims(101)

    def test_scale_cells_plan(self):
        cells = scale_cells(SCALE_SIZES)
        assert cells[0] == ("grid", 100)  # smallest-first for RSS honesty
        assert [n for _, n in cells] == sorted(n for _, n in cells)
        assert ("line", 10_000) not in cells  # capped at LINE_MAX_NODES
        assert ("grid", 10_000) in cells
        assert all(n <= LINE_MAX_NODES for kind, n in cells if kind == "line")

    def test_compare_passes_within_threshold(self):
        base = {"cells": {"grid-100": {"speedup": 6.0, "metrics_equal": True}}}
        new = {"cells": {"grid-100": {"speedup": 4.0, "metrics_equal": True}}}
        assert compare_scale_payloads(base, new, threshold=0.5).passed

    def test_compare_flags_speedup_collapse(self):
        base = {"cells": {"grid-100": {"speedup": 6.0, "metrics_equal": True}}}
        new = {"cells": {"grid-100": {"speedup": 2.0, "metrics_equal": True}}}
        report = compare_scale_payloads(base, new, threshold=0.5)
        assert not report.passed
        assert report.regressions[0].metric == "speedup"

    def test_compare_flags_missing_cell(self):
        base = {"cells": {"grid-100": {"speedup": 6.0}}}
        report = compare_scale_payloads(base, {"cells": {}}, threshold=0.5)
        assert not report.passed
        assert "scale:grid-100" in report.missing_groups

    def test_compare_flags_broken_bit_identity(self):
        base = {"cells": {"grid-100": {"speedup": 6.0, "metrics_equal": True}}}
        new = {"cells": {"grid-100": {"speedup": 6.0, "metrics_equal": False}}}
        report = compare_scale_payloads(base, new, threshold=0.5)
        assert not report.passed
        assert report.regressions[0].metric == "metrics_equal"

    def test_compare_never_gates_raw_wall_times(self):
        base = {"cells": {"grid-100": {"speedup": 6.0, "opt_s": 0.1, "metrics_equal": True}}}
        new = {"cells": {"grid-100": {"speedup": 6.0, "opt_s": 99.0, "metrics_equal": True}}}
        assert compare_scale_payloads(base, new, threshold=0.5).passed

    def test_reference_max_below_10k(self):
        # The 10k cells must never be asked for a reference leg.
        assert REFERENCE_MAX_NODES < 10_000


class TestScaleBitIdentity:
    def test_reference_equality_small_grid(self):
        clear_caches()
        result = reference_equality("grid", 16, executions=1, seed=11)
        assert result["metrics_equal"] == 1.0
        assert result["frames"] > 0
        assert result["intervals"] > 0
