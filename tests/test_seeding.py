"""Shared SHA-256 seed derivation (:mod:`repro.seeding`)."""

from __future__ import annotations

import random

from repro.campaign.spec import derive_cell_seed
from repro.seeding import SEED_MASK, canonical_json, derive_rng, derive_seed, seed_material


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("link-loss", 7) == derive_seed("link-loss", 7)

    def test_distinct_parts_distinct_seeds(self):
        seeds = {
            derive_seed("link-loss", 7),
            derive_seed("link-loss", 8),
            derive_seed("fault-injector", 7),
            derive_seed("link-loss", 7, 0),
        }
        assert len(seeds) == 4

    def test_range_is_nonnegative_63_bit(self):
        for i in range(200):
            seed = derive_seed("range-probe", i)
            assert 0 <= seed <= SEED_MASK

    def test_mapping_key_order_does_not_matter(self):
        a = derive_seed(3, "s", {"x": 1, "y": 2})
        b = derive_seed(3, "s", {"y": 2, "x": 1})
        assert a == b

    def test_bytes_parts_are_hex_rendered(self):
        assert seed_material(b"\x00\xff") == "00ff"
        assert derive_seed(b"\x00\xff") == derive_seed(b"\x00\xff")

    def test_material_is_pipe_joined_str(self):
        assert seed_material("a", 1, 2.5) == "a|1|2.5"
        assert seed_material("a", {"k": 1}) == 'a|{"k":1}'

    def test_canonical_json_is_sorted_and_tight(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestDeriveRng:
    def test_same_parts_same_stream(self):
        a, b = derive_rng("stream", 1), derive_rng("stream", 1)
        assert isinstance(a, random.Random)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        a, b = derive_rng("stream", 1), derive_rng("stream", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestCellSeedCompatibility:
    """Campaign cell seeds must keep their pre-existing byte values.

    ``derive_cell_seed`` predates :mod:`repro.seeding` and its values
    are baked into persisted result stores; the shared scheme must
    reproduce them exactly.
    """

    def test_cell_seed_is_the_shared_derivation(self):
        params = {"nodes": 300, "malicious": 1, "trials": 5, "theta_max": 12}
        assert derive_cell_seed(7, "fig7", params) == derive_seed(7, "fig7", params)

    def test_cell_seed_param_order_invariant(self):
        a = derive_cell_seed(1, "s", {"x": 1, "y": 2})
        b = derive_cell_seed(1, "s", {"y": 2, "x": 1})
        assert a == b
