"""Simulator-vs-service bit-for-bit equivalence (the issue's gate).

Each test runs the same seeded session twice — once over real asyncio
node-host OS processes on loopback, once entirely in-process — and
asserts protocol-level identity: aggregate estimate, per-execution
outcomes, the revocation set, and every protocol metric (message and
byte counts per node, flooding rounds, broadcasts, ...) after stripping
the runtime-only fields (wall-clock timings, wire accounting).

Configs are sized for CI: small topologies, and θ lowered to 6 in the
attacked cell so the revocation cascade converges in a few executions.
The equivalence claim itself is scale-independent — the transport ships
the simulator's own frame encodings.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, LinkDown, NodeCrash
from repro.service import ServiceSpec, run_equivalence


def assert_equivalent(report):
    assert report.matches, "service/simulator divergence:\n" + "\n".join(
        report.diffs
    )


@pytest.mark.slow
def test_clean_session_matches_simulator():
    """8 nodes over 2 host processes, no adversary: one execution."""
    report = run_equivalence(ServiceSpec(num_nodes=8, processes=2, seed=3))
    assert_equivalent(report)
    assert report.service.estimate == report.sim.estimate is not None
    assert report.service.num_executions == 1
    assert report.service.revocations == []
    # The service leg measured real wall-clock per phase and execution.
    latency = report.service.latency
    assert "execution" in latency
    for label, stats in latency.items():
        assert stats["p50"] <= stats["p95"] <= stats["p99"], label
    # Frames actually crossed process boundaries.
    assert report.service.metrics.wire_bytes > 0
    assert report.sim.metrics.wire_bytes == 0


@pytest.mark.slow
def test_attacked_session_with_revocations_matches_simulator():
    """25 nodes / 2 hosts, spurious-veto attacker, θ=6.

    Drives the full VMAT session loop — repeated executions, key
    revocations, the θ-cascade and finally a sensor revocation — and the
    cross-process replica must reproduce the simulator's every step:
    same executions, same revocation sequence, same estimate.
    """
    spec = ServiceSpec(
        num_nodes=25, processes=2, seed=0, malicious_ids=(5,), theta=6
    )
    report = run_equivalence(spec, attack="spurious-veto")
    assert_equivalent(report)
    assert report.service.num_executions > 1
    revocations = report.service.revocations
    assert revocations, "the attacked session must revoke"
    assert ("sensor", 5) in {(kind, target) for kind, target, _ in revocations}
    assert report.service.estimate is not None


@pytest.mark.slow
def test_three_host_sharding_matches_simulator():
    """Same attacked session, different sharding: the cut of the node set
    across processes must not be observable in any protocol outcome."""
    spec = ServiceSpec(
        num_nodes=25, processes=3, seed=0, malicious_ids=(5,), theta=6
    )
    report = run_equivalence(spec, attack="spurious-veto")
    assert_equivalent(report)
    two_hosts = run_equivalence(
        ServiceSpec(num_nodes=25, processes=2, seed=0, malicious_ids=(5,), theta=6),
        attack="spurious-veto",
    )
    assert report.service.revocations == two_hosts.service.revocations
    assert report.service.estimate == two_hosts.service.estimate


@pytest.mark.slow
def test_fault_plan_session_matches_simulator():
    """Crash + link-down windows replayed identically on every replica.

    Benign faults must degrade both legs the same way: same outcomes
    (results or inconclusive executions), and — per the benign-failure
    safety property — no revocations in either leg.
    """
    plan = FaultPlan(
        name="svc-faults",
        events=(
            NodeCrash(start=3, end=9, node=7),
            LinkDown(start=5, end=14, a=2, b=3),
        ),
    )
    spec = ServiceSpec(
        num_nodes=25, processes=2, seed=2, fault_plan=plan.to_json()
    )
    report = run_equivalence(spec)
    assert_equivalent(report)
    assert report.service.revocations == []
    summary = report.service.metrics.summary()
    assert summary["faults_injected"] > 0
