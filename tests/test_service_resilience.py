"""The service resilience layer (docs/SERVICE.md, "Failure semantics").

Fast tests cover the deterministic primitives in isolation: seed-derived
retry schedules, timeout resolution with environment overrides, the
control journal's entry semantics, chaos-plan serialization/derivation,
and the supervisor's process-lifecycle accounting.

The ``slow``-marked tests are the issue's acceptance gates, end to end
over real node-host OS processes: a host SIGKILLed mid-session is
restarted and caught up by journal replay with *bit-for-bit* protocol
equivalence to the undisturbed simulator run; a host dead past its
restart budget degrades benignly (INCONCLUSIVE, zero revocations,
honest-node-safety intact); and the seeded chaos harness is
deterministic — two runs of the same plan serialize identically.
"""

from __future__ import annotations

import json
import signal
import sys

import pytest

from repro.errors import ConfigError
from repro.service import (
    ChaosController,
    ChaosPlan,
    ControlTimeouts,
    JournalEntry,
    KillHost,
    RefuseConnect,
    ResetControl,
    RetryPolicy,
    ServiceSpec,
    run_chaos,
    seeded_chaos_plan,
)
from repro.service.chaos import PROFILES
from repro.service.resilience import (
    GRACE_ENV,
    TIMEOUT_ENV,
    control_timeout,
    shutdown_grace,
)
from repro.service.runtime import (
    default_readings,
    run_sim_session,
    strip_runtime_metrics,
)
from repro.service.supervisor import Supervisor


def fast_spec(**overrides) -> ServiceSpec:
    """A spec with CI-sized liveness knobs: a stopped host is declared
    unresponsive within ~2s and retry sleeps total well under a second."""
    base = dict(
        num_nodes=8,
        processes=2,
        seed=3,
        detection_window_s=2.0,
        heartbeat_interval_s=0.2,
        retry_base_s=0.02,
        retry_max_s=0.1,
        peer_ack_timeout_s=0.5,
        restart_budget=1,
    )
    base.update(overrides)
    return ServiceSpec(**base)


# ----------------------------------------------------------------------
# RetryPolicy: seed-derived bounded exponential backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_a_pure_function_of_seed_and_identity(self):
        a = RetryPolicy(attempts=5, seed=7).schedule("control-connect", 1)
        b = RetryPolicy(attempts=5, seed=7).schedule("control-connect", 1)
        assert a == b

    def test_schedule_length_is_attempts_minus_one(self):
        assert len(RetryPolicy(attempts=4).schedule("x")) == 3
        assert RetryPolicy(attempts=1).schedule("x") == ()

    def test_call_sites_are_decorrelated(self):
        policy = RetryPolicy(attempts=4, seed=0)
        assert policy.schedule("control-connect", 0) != policy.schedule(
            "peer-send", 0
        )
        assert policy.schedule("control-connect", 0) != policy.schedule(
            "control-connect", 1
        )

    def test_seed_changes_the_schedule(self):
        assert RetryPolicy(attempts=4, seed=0).schedule("x") != RetryPolicy(
            attempts=4, seed=1
        ).schedule("x")

    def test_delays_grow_exponentially_within_cap_and_jitter(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.05, max_delay=0.5, jitter=0.5, seed=3
        )
        for i, delay in enumerate(policy.schedule("bounds")):
            base = min(0.5, 0.05 * 2**i)
            assert base <= delay <= base * 1.5

    def test_zero_jitter_is_exact_exponential_backoff(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.1, max_delay=1.0, jitter=0.0
        )
        assert policy.schedule("anything") == (0.1, 0.2, 0.4)

    def test_from_spec_reads_the_retry_knobs(self):
        spec = fast_spec(retry_attempts=7, retry_jitter=0.25, seed=11)
        policy = RetryPolicy.from_spec(spec)
        assert policy.attempts == 7
        assert policy.base_delay == spec.retry_base_s
        assert policy.max_delay == spec.retry_max_s
        assert policy.jitter == 0.25
        assert policy.seed == 11


# ----------------------------------------------------------------------
# ControlTimeouts: spec resolution + environment overrides
# ----------------------------------------------------------------------
class TestControlTimeouts:
    def test_from_spec_reads_the_liveness_knobs(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        spec = fast_spec(control_timeout_s=12.0)
        timeouts = ControlTimeouts.from_spec(spec)
        assert timeouts.control_timeout == 12.0
        assert timeouts.detection_window == 2.0
        assert timeouts.heartbeat_interval == 0.2
        # The poll slice stays a fraction of the window so detection is
        # prompt even with tiny test windows.
        assert timeouts.poll == min(0.1, 2.0 / 4.0)

    def test_timeout_env_var_overrides_the_spec(self, monkeypatch):
        spec = fast_spec(control_timeout_s=12.0)
        monkeypatch.setenv(TIMEOUT_ENV, "7.5")
        assert control_timeout(spec) == 7.5
        assert ControlTimeouts.from_spec(spec).control_timeout == 7.5
        monkeypatch.delenv(TIMEOUT_ENV)
        assert control_timeout(spec) == 12.0

    def test_grace_env_var_overrides_the_spec(self, monkeypatch):
        spec = fast_spec(shutdown_grace_s=9.0)
        monkeypatch.setenv(GRACE_ENV, "0.25")
        assert shutdown_grace(spec) == 0.25
        monkeypatch.delenv(GRACE_ENV)
        assert shutdown_grace(spec) == 9.0

    def test_defaults_without_spec_or_env(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(GRACE_ENV, raising=False)
        assert control_timeout() == 60.0
        assert shutdown_grace() == 5.0

    def test_spec_rejects_nonpositive_liveness_knobs(self):
        with pytest.raises(ConfigError):
            fast_spec(detection_window_s=0.0).validate()
        with pytest.raises(ConfigError):
            fast_spec(restart_budget=-1).validate()
        with pytest.raises(ConfigError):
            fast_spec(retry_attempts=0).validate()


# ----------------------------------------------------------------------
# JournalEntry: the recovery substrate's unit of replay
# ----------------------------------------------------------------------
class TestJournalEntry:
    def test_record_for_shared_record(self):
        entry = JournalEntry("tick", record=("tick", 4))
        assert entry.record_for(0) == ("tick", 4)
        assert entry.record_for(1) == ("tick", 4)

    def test_record_for_per_host_record(self):
        entry = JournalEntry(
            "deliver", per_host={0: ("deliver", 4, ()), 1: ("deliver", 4, (1,))}
        )
        assert entry.record_for(0) == ("deliver", 4, ())
        assert entry.record_for(1) == ("deliver", 4, (1,))

    def test_entries_compare_by_identity_not_content(self):
        # The recovery path locates the in-flight entry positionally;
        # two consecutive phase-ends carry equal records but are
        # distinct exchanges.
        a = JournalEntry("phase-end", record=("phase-end",))
        b = JournalEntry("phase-end", record=("phase-end",))
        assert a != b
        assert a == a


# ----------------------------------------------------------------------
# Chaos plans: serialization, seeded derivation, controller env hooks
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_plan_round_trips_through_json(self):
        plan = ChaosPlan(
            name="mixed-demo",
            kills=(KillHost(host=1, interval=4), KillHost(host=0, interval=9, stop=True)),
            resets=(ResetControl(host=1, after_records=12),),
            refusals=(RefuseConnect(host=0, incarnation=1, attempts=2),),
        )
        restored = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan

    def test_seeded_plan_is_deterministic(self):
        spec = fast_spec()
        assert seeded_chaos_plan(spec, 1, "mixed") == seeded_chaos_plan(
            spec, 1, "mixed"
        )
        assert seeded_chaos_plan(spec, 1, "kill") != seeded_chaos_plan(
            spec, 2, "kill"
        )

    @pytest.mark.parametrize("profile", PROFILES)
    def test_every_profile_yields_a_well_formed_plan(self, profile):
        spec = fast_spec(processes=3)
        plan = seeded_chaos_plan(spec, 5, profile)
        for kill in plan.kills:
            assert 0 <= kill.host < spec.processes
            assert kill.interval >= 2
        if profile in ("kill", "stop", "mixed"):
            assert plan.kills
        if profile == "stop":
            assert all(kill.stop for kill in plan.kills)
        if profile in ("reset", "flaky", "mixed"):
            assert plan.resets
        if profile in ("flaky", "mixed"):
            assert plan.refusals

    def test_unknown_profile_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown chaos profile"):
            seeded_chaos_plan(fast_spec(), 0, "meteor")

    def test_controller_spawn_env_targets_one_incarnation(self):
        plan = ChaosPlan(
            name="refuse",
            refusals=(
                RefuseConnect(host=0, incarnation=1, attempts=2),
                RefuseConnect(host=0, incarnation=1, attempts=1),
            ),
        )
        controller = ChaosController(plan)
        env = controller.spawn_env(host_index=0, incarnation=1)
        assert env == {"REPRO_SERVICE_CHAOS_REFUSE": "3"}
        assert controller.spawn_env(host_index=0, incarnation=0) is None
        assert controller.spawn_env(host_index=1, incarnation=1) is None


# ----------------------------------------------------------------------
# Supervisor: the process-lifecycle oracle
# ----------------------------------------------------------------------
def _register_sleeper(supervisor: Supervisor, host_index: int):
    """Spawn an inert child and register it as ``host_index``'s
    incarnation, exactly as ``spawn_host`` would."""
    proc = supervisor.spawn(
        [sys.executable, "-c", "import time; time.sleep(60)"]
    )
    supervisor.by_host[host_index] = proc
    supervisor.host_of_pid[proc.pid] = host_index
    return proc


class TestSupervisor:
    def test_poll_kill_and_expected_exit_accounting(self):
        with Supervisor(grace=5.0) as supervisor:
            _register_sleeper(supervisor, 0)
            assert supervisor.poll_host(0) is None  # alive
            supervisor.kill_host(0)
            assert supervisor.poll_host(0) == -signal.SIGKILL
            (exit_status,) = supervisor.shutdown_report()
        assert exit_status.host_index == 0
        assert exit_status.returncode == -signal.SIGKILL
        assert exit_status.expected

    def test_unexpected_death_is_flagged_in_the_report(self):
        with Supervisor(grace=5.0) as supervisor:
            proc = _register_sleeper(supervisor, 2)
            proc.kill()  # spontaneous failure, not a runtime action
            proc.wait()
            (exit_status,) = supervisor.shutdown_report()
        assert exit_status.host_index == 2
        assert exit_status.returncode == -signal.SIGKILL
        assert not exit_status.expected

    def test_kill_host_clears_a_stopped_child(self):
        # SIGKILL reaps SIGSTOPped children too: the "hung host" case.
        with Supervisor(grace=5.0) as supervisor:
            _register_sleeper(supervisor, 1)
            supervisor.signal_host(1, signal.SIGSTOP)
            supervisor.kill_host(1)
            assert supervisor.poll_host(1) == -signal.SIGKILL

    def test_kill_host_is_idempotent_and_tolerates_unknown_hosts(self):
        with Supervisor(grace=5.0) as supervisor:
            supervisor.kill_host(9)  # never spawned: no-op
            _register_sleeper(supervisor, 0)
            supervisor.kill_host(0)
            supervisor.kill_host(0)
            assert supervisor.poll_host(0) == -signal.SIGKILL


# ----------------------------------------------------------------------
# End-to-end acceptance gates (real node-host processes)
# ----------------------------------------------------------------------
def _sim_outcome(spec: ServiceSpec, attack=None):
    sim = run_sim_session(spec, attack=attack, readings=default_readings(spec))
    return {
        "estimate": sim.estimate,
        "outcomes": sim.outcomes,
        "revocations": [list(item) for item in sim.revocations],
        "metrics": strip_runtime_metrics(sim.metrics.to_dict()),
    }


@pytest.mark.slow
def test_kill_and_restart_matches_simulator_bit_for_bit():
    """The headline gate: a 25-node attacked session whose host 0 is
    SIGKILLed mid-session must — after detection, restart and journal
    replay — be indistinguishable from the undisturbed simulator run in
    every protocol-level outcome."""
    spec = fast_spec(
        num_nodes=25, processes=2, seed=0, malicious_ids=(5,), theta=6,
        restart_budget=1,
    )
    plan = ChaosPlan(name="kill-host0", kills=(KillHost(host=0, interval=5),))
    report = run_chaos(spec, plan, attack="spurious-veto")
    assert report.safe, report.safety_violations
    out = report.outcome
    assert out["restarts"] == {"0": 1}
    assert out["degraded_hosts"] == []
    sim = _sim_outcome(spec, attack="spurious-veto")
    assert out["estimate"] == sim["estimate"]
    assert out["outcomes"] == sim["outcomes"]
    assert out["revocations"] == sim["revocations"]
    assert out["metrics"] == sim["metrics"]
    assert ["sensor", 5] in [r[:2] for r in out["revocations"]]


@pytest.mark.slow
def test_budget_exhausted_host_degrades_benignly():
    """Past the restart budget the session must still complete: the dead
    host's sensors become synthesized benign crash faults, pinpointing
    defers, and the attacked session ends INCONCLUSIVE with zero
    revocations — process death is never treated as malice."""
    spec = fast_spec(
        num_nodes=25, processes=2, seed=0, malicious_ids=(5,), theta=6,
        restart_budget=0,
    )
    plan = ChaosPlan(name="kill-no-budget", kills=(KillHost(host=0, interval=3),))
    report = run_chaos(spec, plan, attack="spurious-veto")
    assert report.safe, report.safety_violations
    out = report.outcome
    assert out["degraded_hosts"] == [0]
    assert out["estimate"] is None
    assert out["outcomes"][-1] == "inconclusive"
    assert out["revocations"] == []
    assert out["restarts"] == {}


@pytest.mark.slow
def test_seeded_chaos_harness_is_deterministic():
    """Two runs of the same seeded plan must produce identical canonical
    outcome documents — the CI double-run zero-tolerance diff."""
    spec = fast_spec(restart_budget=2)
    plan = seeded_chaos_plan(spec, 1, "kill")
    first = run_chaos(spec, plan)
    second = run_chaos(spec, plan)
    assert first.safe and second.safe
    assert json.dumps(first.outcome, sort_keys=True) == json.dumps(
        second.outcome, sort_keys=True
    )
    assert first.outcome["restarts"], "the seeded kill must force a restart"


@pytest.mark.slow
def test_stopped_host_is_detected_by_the_window_and_restarted():
    """SIGSTOP is the nasty case — the process is alive, its socket
    open, it simply stops answering.  The heartbeat detection window
    must declare it unresponsive and the restart path recover it."""
    spec = fast_spec(restart_budget=1)
    plan = ChaosPlan(
        name="stop-host1", kills=(KillHost(host=1, interval=3, stop=True),)
    )
    report = run_chaos(spec, plan)
    assert report.safe, report.safety_violations
    out = report.outcome
    assert out["restarts"] == {"1": 1}
    assert out["degraded_hosts"] == []
    assert out["estimate"] is not None
    assert any(
        item[0] == "chaos-kill" and item[1] == 1 and item[3] == "stop"
        for item in out["retry_trace"]
    )


@pytest.mark.slow
def test_connect_refusals_exhaust_the_seeded_retry_schedule():
    """A restarted incarnation (incarnations are 1-based, so the first
    restart is incarnation 2) whose first two connect attempts are
    refused must retry on the seed-derived schedule and still catch up;
    the retries land in host-event accounting."""
    spec = fast_spec(restart_budget=1)
    plan = ChaosPlan(
        name="kill-then-refuse",
        kills=(KillHost(host=0, interval=3),),
        refusals=(RefuseConnect(host=0, incarnation=2, attempts=2),),
    )
    report = run_chaos(spec, plan)
    assert report.safe, report.safety_violations
    out = report.outcome
    assert out["restarts"] == {"0": 1}
    assert out["estimate"] is not None
    assert out["host_events"].get("host-0.retry:control-connect", 0) >= 2
