"""Unit coverage for the service runtime's non-protocol machinery.

The end-to-end bit-for-bit guarantees live in
``tests/test_service_equivalence.py``; here we pin the pieces those runs
rest on — spec serialization and sharding, the deployment generator's
artifacts, the wall-clock latency algebra in :class:`repro.metrics.
Metrics`, and supervisor SIGTERM handling (graceful exit + metrics
flush, no orphans).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigError
from repro.faults.plan import BurstLoss, FaultPlan, NodeCrash
from repro.metrics import Metrics, percentile
from repro.service import (
    ServiceSpec,
    generate_deployment,
    strip_runtime_metrics,
)
from repro.service.spec import SPEC_ENV


# ----------------------------------------------------------------------
# ServiceSpec: serialization, validation, sharding
# ----------------------------------------------------------------------
def test_spec_json_round_trip():
    spec = ServiceSpec(
        num_nodes=30, seed=7, processes=3, malicious_ids=(4, 9),
        depth_bound=8, theta=6, multipath=True, metrics_dir="/tmp/m",
    )
    assert ServiceSpec.from_json(spec.to_json()) == spec


def test_spec_unknown_field_rejected():
    with pytest.raises(ConfigError, match="unknown ServiceSpec field"):
        ServiceSpec.from_dict({"num_nodes": 10, "warp_factor": 9})


def test_spec_from_env_requires_variable(monkeypatch):
    monkeypatch.delenv(SPEC_ENV, raising=False)
    with pytest.raises(ConfigError, match=SPEC_ENV):
        ServiceSpec.from_env()
    spec = ServiceSpec(num_nodes=12, processes=2)
    monkeypatch.setenv(SPEC_ENV, spec.to_json())
    assert ServiceSpec.from_env() == spec


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(num_nodes=1), "at least one sensor"),
        (dict(processes=0), "at least one node-host"),
        (dict(num_nodes=4, processes=9), "only 3 honest sensors"),
        (dict(malicious_ids=(99,)), "outside"),
        (dict(tree_variant="steiner"), "unknown tree variant"),
    ],
)
def test_spec_validation_rejects(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        ServiceSpec(**kwargs).validate()


def test_spec_rejects_unreplayable_fault_kinds():
    plan = FaultPlan(
        name="bad", events=(BurstLoss(start=1, end=4, loss_rate=0.5),)
    )
    with pytest.raises(ConfigError, match="not replayable"):
        ServiceSpec(fault_plan=plan.to_json()).validate()


def test_spec_accepts_replayable_fault_plan():
    plan = FaultPlan(name="ok", events=(NodeCrash(start=2, end=5, node=3),))
    spec = ServiceSpec(fault_plan=plan.to_json())
    spec.validate()
    assert spec.plan().counts_by_kind() == {"crash": 1}


def test_sharding_partitions_honest_sensors():
    spec = ServiceSpec(num_nodes=20, processes=3, malicious_ids=(5, 11))
    shards = [spec.hosted_ids(i) for i in range(3)]
    flat = sorted(x for shard in shards for x in shard)
    assert flat == spec.honest_sensor_ids()  # disjoint + complete
    assert 5 not in flat and 11 not in flat
    # Round-robin keeps shard sizes within one of each other.
    sizes = sorted(len(s) for s in shards)
    assert sizes[-1] - sizes[0] <= 1
    # host_of_map agrees with hosted_ids.
    host_of = spec.host_of_map()
    for index, shard in enumerate(shards):
        assert all(host_of[s] == index for s in shard)
    with pytest.raises(ConfigError, match="host index"):
        spec.hosted_ids(3)


# ----------------------------------------------------------------------
# Deployment generator
# ----------------------------------------------------------------------
def test_generate_deployment_artifacts(tmp_path):
    spec = ServiceSpec(num_nodes=9, processes=2, seed=3)
    written = generate_deployment(spec, str(tmp_path))
    names = {os.path.basename(p) for p in written}
    assert names == {"spec.json", "docker-compose.yml", "Procfile"}

    on_disk = ServiceSpec.from_json((tmp_path / "spec.json").read_text())
    # The ephemeral port 0 is replaced by a knowable rendezvous port.
    assert on_disk.control_port != 0
    assert on_disk.num_nodes == 9 and on_disk.processes == 2

    compose = (tmp_path / "docker-compose.yml").read_text()
    assert "coordinator:" in compose
    assert "node-0:" in compose and "node-1:" in compose
    assert "node-2:" not in compose
    assert SPEC_ENV in compose
    assert "--external-hosts" in compose
    # Hosts in compose dial the coordinator by service name.
    inline = compose.split(f"{SPEC_ENV}: '", 1)[1].split("'", 1)[0]
    assert json.loads(inline)["host"] == "coordinator"

    procfile = (tmp_path / "Procfile").read_text()
    assert procfile.count("node-") == 2
    assert "--external-hosts" in procfile


# ----------------------------------------------------------------------
# Wall-clock latency algebra
# ----------------------------------------------------------------------
def test_latency_percentiles_nearest_rank():
    metrics = Metrics()
    for ms in range(1, 101):  # samples 0.001 .. 0.100
        metrics.record_wall_clock("tree", ms / 1000.0)
    stats = metrics.latency_percentiles()["tree"]
    assert stats == {"p50": 0.050, "p95": 0.095, "p99": 0.099, "count": 100.0}
    # A single sample is every percentile of itself.
    metrics.record_wall_clock("aggregation", 0.25)
    agg = metrics.latency_percentiles()["aggregation"]
    assert agg == {"p50": 0.25, "p95": 0.25, "p99": 0.25, "count": 1.0}


def test_percentile_of_empty_samples_raises():
    with pytest.raises(ValueError):
        percentile([], 50.0)


def test_latency_merge_concatenates_samples():
    left, right = Metrics(), Metrics()
    for value in (0.010, 0.020, 0.030):
        left.record_wall_clock("execution", value)
    for value in (0.040, 0.050):
        right.record_wall_clock("execution", value)
    right.record_wall_clock("tree", 0.001)
    left.merge(right)
    assert left.wall_clock["execution"] == [0.010, 0.020, 0.030, 0.040, 0.050]
    stats = left.latency_percentiles()
    # Percentiles of the union, not a merge of precomputed percentiles.
    assert stats["execution"]["p50"] == 0.030
    assert stats["execution"]["p99"] == 0.050
    assert stats["tree"]["count"] == 1.0


def test_wall_clock_and_wire_survive_serialization():
    metrics = Metrics()
    metrics.record_wall_clock("confirmation", 0.125)
    metrics.record_wire(4096, frames=3)
    restored = Metrics.from_dict(metrics.to_dict())
    assert restored.wall_clock == {"confirmation": [0.125]}
    assert restored.wire_bytes == 4096 and restored.wire_frames == 3


def test_strip_runtime_metrics_drops_only_runtime_fields():
    metrics = Metrics()
    metrics.record_transmission(1, 2, 100)
    metrics.record_wall_clock("tree", 0.5)
    metrics.record_wire(64)
    stripped = strip_runtime_metrics(metrics.to_dict())
    assert "wall_clock" not in stripped
    assert "wire_bytes" not in stripped and "wire_frames" not in stripped
    assert stripped["bytes_sent"] == {"1": 100}


# ----------------------------------------------------------------------
# Supervisor: SIGTERM is graceful — metrics flushed, children reaped
# ----------------------------------------------------------------------
def test_sigterm_flushes_metrics_and_reaps_children(tmp_path):
    from repro.service import ServiceRuntime

    spec = ServiceSpec(
        num_nodes=8, processes=2, seed=1, metrics_dir=str(tmp_path)
    )
    network = spec.build_deployment().network
    runtime = ServiceRuntime(network, spec)
    runtime.launch()
    try:
        supervisor = runtime.supervisor
        assert len(supervisor.alive()) == 2
        # SIGTERM without a shutdown record: hosts trap it, flush their
        # metrics snapshots, and exit 0 — the graceful path.
        codes = supervisor.shutdown()
        assert codes == [0, 0]
        assert supervisor.alive() == []
        flushed = sorted(p.name for p in tmp_path.glob("host-*.metrics.json"))
        assert flushed == ["host-0.metrics.json", "host-1.metrics.json"]
        for path in tmp_path.glob("host-*.metrics.json"):
            Metrics.from_dict(json.loads(path.read_text()))  # parses losslessly
    finally:
        runtime.finish()
    # finish() detached every hook even though the hosts were already gone.
    assert network.honest_driver is None
    assert network.transport_factory is None
