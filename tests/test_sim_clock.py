"""Bounded-error clocks and the guard-band technique (Section IV-A)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import ClockConfig
from repro.errors import SimulationError
from repro.sim import ClockAssignment, IntervalSchedule, LocalClock


class TestLocalClock:
    def test_local_and_global_round_trip(self):
        clock = LocalClock(0.02, ClockConfig())
        assert clock.global_time(clock.local_time(5.0)) == pytest.approx(5.0)

    def test_rejects_offset_beyond_half_delta(self):
        with pytest.raises(SimulationError):
            LocalClock(0.5, ClockConfig(max_error=0.05))

    def test_safe_send_time_lands_inside_interval(self):
        config = ClockConfig(interval_length=1.0, max_error=0.05)
        schedule = IntervalSchedule(0.0, 1.0, 5)
        for offset in (-0.025, 0.0, 0.025):
            clock = LocalClock(offset, config)
            send = clock.safe_send_time(schedule, 3)
            assert schedule.interval_of(send) == 3

    def test_guard_band_holds_for_every_honest_receiver(self):
        """The paper's claim: a guarded send is observed in the same
        interval by any receiver whose clock error is within Delta."""
        config = ClockConfig(interval_length=1.0, max_error=0.2)
        schedule = IntervalSchedule(0.0, 1.0, 5)
        sender = LocalClock(0.1, config)
        send_time = sender.safe_send_time(schedule, 2)
        for receiver_offset in (-0.1, -0.05, 0.0, 0.05, 0.1):
            receiver = LocalClock(receiver_offset, config)
            assert receiver.observed_interval(schedule, send_time) == 2

    @given(
        sender_offset=st.floats(-0.025, 0.025),
        receiver_offset=st.floats(-0.025, 0.025),
        interval=st.integers(1, 8),
    )
    def test_guard_band_property(self, sender_offset, receiver_offset, interval):
        config = ClockConfig(interval_length=1.0, max_error=0.05)
        schedule = IntervalSchedule(0.0, 1.0, 8)
        sender = LocalClock(sender_offset, config)
        receiver = LocalClock(receiver_offset, config)
        send_time = sender.safe_send_time(schedule, interval)
        assert receiver.observed_interval(schedule, send_time) == interval


class TestClockAssignment:
    def test_base_station_has_zero_offset(self):
        clocks = ClockAssignment(range(10), ClockConfig(), seed=3)
        assert clocks[0].offset == 0.0

    def test_all_offsets_within_half_delta(self):
        config = ClockConfig(max_error=0.05)
        clocks = ClockAssignment(range(100), config, seed=1)
        for node in range(100):
            assert abs(clocks[node].offset) <= config.max_error / 2

    def test_pairwise_error_bounded_by_delta(self):
        config = ClockConfig(max_error=0.05)
        clocks = ClockAssignment(range(100), config, seed=2)
        assert clocks.max_pairwise_error() <= config.max_error

    def test_deterministic_given_seed(self):
        a = ClockAssignment(range(20), ClockConfig(), seed=9)
        b = ClockAssignment(range(20), ClockConfig(), seed=9)
        assert all(a[i].offset == b[i].offset for i in range(20))

    def test_different_seeds_differ(self):
        a = ClockAssignment(range(20), ClockConfig(), seed=1)
        b = ClockAssignment(range(20), ClockConfig(), seed=2)
        assert any(a[i].offset != b[i].offset for i in range(1, 20))

    def test_len_and_contains(self):
        clocks = ClockAssignment(range(5), ClockConfig(), seed=0)
        assert len(clocks) == 5
        assert 3 in clocks
        assert 7 not in clocks
