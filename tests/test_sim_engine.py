"""Discrete-event engine and interval schedule tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import IntervalSchedule, SimulationEngine


class TestSimulationEngine:
    def test_runs_events_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        for label in "abcde":
            engine.schedule(1.0, lambda l=label: fired.append(l))
        engine.run()
        assert fired == list("abcde")

    def test_now_advances_with_events(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_rejects_scheduling_into_the_past(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_schedule_after_uses_relative_delay(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(2.0, lambda: engine.schedule_after(3.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [5.0]

    def test_rejects_negative_delay(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                engine.schedule_after(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_max_events_guards_runaway_loops(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule_after(1.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_step_returns_none_when_empty(self):
        assert SimulationEngine().step() is None

    def test_not_reentrant(self):
        engine = SimulationEngine()
        errors = []

        def bad():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(exc)

        engine.schedule(0.0, bad)
        engine.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for t in range(4):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 4


class TestIntervalSchedule:
    def test_interval_boundaries(self):
        schedule = IntervalSchedule(start_time=10.0, interval_length=2.0, num_intervals=3)
        assert schedule.interval_start(1) == 10.0
        assert schedule.interval_end(1) == 12.0
        assert schedule.interval_start(3) == 14.0
        assert schedule.end_time == 16.0

    def test_interval_of_maps_times_correctly(self):
        schedule = IntervalSchedule(0.0, 1.0, 5)
        assert schedule.interval_of(-0.5) == 0  # before phase
        assert schedule.interval_of(0.0) == 1
        assert schedule.interval_of(0.999) == 1
        assert schedule.interval_of(4.5) == 5
        assert schedule.interval_of(5.0) == 6  # after phase == ignored

    def test_midpoint(self):
        schedule = IntervalSchedule(0.0, 2.0, 4)
        assert schedule.midpoint(2) == 3.0

    def test_rejects_out_of_range_interval(self):
        schedule = IntervalSchedule(0.0, 1.0, 3)
        with pytest.raises(SimulationError):
            schedule.interval_start(0)
        with pytest.raises(SimulationError):
            schedule.interval_end(4)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(SimulationError):
            IntervalSchedule(0.0, 0.0, 3)
        with pytest.raises(SimulationError):
            IntervalSchedule(0.0, 1.0, 0)

    @given(
        start=st.floats(-100, 100),
        length=st.floats(0.01, 10),
        num=st.integers(1, 50),
        k=st.integers(1, 50),
    )
    def test_midpoint_always_inside_its_interval(self, start, length, num, k):
        if k > num:
            k = num
        schedule = IntervalSchedule(start, length, num)
        mid = schedule.midpoint(k)
        assert schedule.interval_start(k) < mid < schedule.interval_end(k)
        assert schedule.interval_of(mid) == k
