"""Execution timelines and engine-driven guard-band validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClockConfig
from repro.errors import SimulationError
from repro.sim import (
    execution_latency_seconds,
    pinpointing_duration,
    plan_execution,
    simulate_slot_timing,
)

CLOCK = ClockConfig(interval_length=1.0, max_error=0.05)


class TestPlanExecution:
    def test_six_phases_back_to_back(self):
        timeline = plan_execution(depth_bound=8, clock=CLOCK)
        assert len(timeline.phases) == 6
        for previous, current in zip(timeline.phases, timeline.phases[1:]):
            assert current.start_time == previous.end_time

    def test_total_duration_is_6L_intervals(self):
        timeline = plan_execution(depth_bound=8, clock=CLOCK)
        assert timeline.total_duration == pytest.approx(6 * 8 * 1.0)

    def test_duration_independent_of_network_size_constants(self):
        # O(1) flooding rounds: latency depends on L, never on n — the
        # planner does not even take n.
        a = plan_execution(5, CLOCK).total_duration
        b = plan_execution(10, CLOCK).total_duration
        assert b == 2 * a

    def test_phase_lookup(self):
        timeline = plan_execution(4, CLOCK)
        assert timeline.phase("aggregation").duration == pytest.approx(4.0)
        with pytest.raises(SimulationError):
            timeline.phase("nonexistent")

    def test_describe_rows(self):
        rows = plan_execution(3, CLOCK).describe()
        assert rows[0][0] == "tree-announce"
        assert rows[-1][0] == "confirmation"

    def test_rejects_bad_depth(self):
        with pytest.raises(SimulationError):
            plan_execution(0, CLOCK)


class TestPinpointingDuration:
    def test_two_rounds_per_test(self):
        assert pinpointing_duration(8, predicate_tests=10, clock=CLOCK) == 160.0

    def test_zero_tests_zero_time(self):
        assert pinpointing_duration(8, 0, CLOCK) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            pinpointing_duration(8, -1, CLOCK)

    def test_latency_composition(self):
        total = execution_latency_seconds(8, CLOCK, predicate_tests=10)
        assert total == pytest.approx(6 * 8 + 160.0)


class TestEngineDrivenGuardBands:
    def test_all_receivers_observe_intended_interval(self):
        mismatches = simulate_slot_timing(
            num_nodes=20, depth_bound=6, clock_config=CLOCK, seed=3
        )
        assert mismatches  # something was simulated
        assert all(count == 0 for count in mismatches.values())

    def test_specific_sends(self):
        mismatches = simulate_slot_timing(
            num_nodes=5,
            depth_bound=4,
            clock_config=CLOCK,
            seed=1,
            sends=[(0, 1), (3, 4)],
        )
        assert set(mismatches) == {(0, 1), (3, 4)}
        assert all(count == 0 for count in mismatches.values())

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        depth=st.integers(1, 12),
        max_error=st.floats(0.0, 0.2),
    )
    def test_guard_band_property_under_engine(self, seed, depth, max_error):
        clock = ClockConfig(interval_length=1.0, max_error=max_error)
        mismatches = simulate_slot_timing(
            num_nodes=10, depth_bound=depth, clock_config=clock, seed=seed
        )
        assert all(count == 0 for count in mismatches.values())

    def test_without_guard_bands_mismatches_would_occur(self):
        """Counterfactual: naive midpoint-by-global-clock sends with a
        coarse interval DO cross boundaries for skewed receivers —
        demonstrating the guard band is load-bearing, not decorative."""
        from repro.sim import ClockAssignment, IntervalSchedule

        # Interval barely longer than 2*Delta; a sender at +Delta/2
        # aiming at its own midpoint lands near the global boundary.
        clock = ClockConfig(interval_length=0.21, max_error=0.1)
        clocks = ClockAssignment(range(50), clock, seed=4)
        schedule = IntervalSchedule(0.0, 0.21, 5)
        boundary_crossings = 0
        for sender in range(50):
            # naive (WRONG) rule: transmit at the interval's global start
            send_time = schedule.interval_start(3)
            for receiver in range(50):
                if clocks[receiver].observed_interval(schedule, send_time) != 3:
                    boundary_crossings += 1
        assert boundary_crossings > 0
