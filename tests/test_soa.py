"""The struct-of-arrays simulation kernel vs the object reference path.

Covers the three SoA layers (keys table, column transport, phase column
state) plus the sharding and cache-sizing machinery around them:

* bit-identity matrix — full executions, warm vs cache-disabled, over
  line / grid / flood-heavy multipath topologies;
* arrival-order preservation — the column store's stable grouping must
  replay the reference deposit order exactly;
* region sharding edge cases (empty, singleton, more shards than items);
* ring-table rows / intersections / bulk edge keys vs per-object rings;
* revocation parity — the array-backed state's event log vs the dict
  backend's, entry for entry;
* cache autosizing (grow-only) and the large-build ring-cache bypass.
"""

import os

import numpy as np
import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.errors import ConfigError
from repro.keys.ring import ring_caches_fit, ring_indices_from_seed, ring_seed
from repro.keys.soa import RingTable, RingTableRevocationState
from repro.net.soa import SoATransport
from repro.perf.cache import (
    LRUCache,
    autosize_caches,
    cache_stats,
    caching_enabled,
    clear_caches,
    disabled,
)
from repro.perf.scale import reference_equality
from repro.perf.shard import delivery_region_geometry, fork_map, regions, shard_count
from repro.topology.generators import grid_topology, line_topology


# ----------------------------------------------------------------------
# End-to-end bit identity: SoA kernel vs cache-disabled object path
# ----------------------------------------------------------------------
class TestBitIdentityMatrix:
    @pytest.mark.parametrize(
        "kind,nodes",
        [("grid", 100), ("line", 100), ("grid", 400)],
        ids=["grid-100", "line-100", "grid-400"],
    )
    def test_scale_cells_bit_identical(self, kind, nodes):
        # Flood-heavy multipath cells (the scale bench's configuration):
        # metrics and frame counts must match the disabled reference.
        clear_caches()
        out = reference_equality(kind, nodes, executions=2)
        assert out["metrics_equal"] == 1.0
        assert out["frames"] > 0

    def test_single_path_line_bit_identical(self):
        # Non-multipath, default key config — exercises the column tree
        # path with single-parent acceptance.
        def run():
            deployment = build_deployment(
                config=small_test_config(depth_bound=40),
                topology=line_topology(30),
                seed=9,
            )
            net = deployment.network
            readings = {i: 5.0 + i for i in deployment.topology.sensor_ids}
            result = VMATProtocol(net).execute(MinQuery(), readings)
            assert result.produced_result
            return net.metrics.to_dict()

        with disabled():
            reference = run()
        clear_caches()
        assert run() == reference


# ----------------------------------------------------------------------
# Arrival-order preservation under the column frame store
# ----------------------------------------------------------------------
class TestTransportOrder:
    def _phase(self):
        deployment = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=line_topology(8),
            seed=3,
        )
        net = deployment.network
        return net, net.new_phase("t", 3)

    def _send_pattern(self, net, phase):
        from repro.net.message import TreeBeacon

        phase.begin_interval(1)
        # Interleaved senders targeting overlapping receivers: per
        # receiver, frames must come back in send order.
        phase.send(2, [1, 3], TreeBeacon(origin=2, hop_count=1), interval=1)
        phase.send(4, [3, 5], TreeBeacon(origin=4, hop_count=1), interval=1)
        phase.send(2, [1, 3], TreeBeacon(origin=2, hop_count=2), interval=1)
        phase.send(0, [1], TreeBeacon(origin=0, hop_count=1), interval=1)

    def _orders(self, phase, receivers):
        return {
            r: [(d.sender, d.payload.hop_count) for d in phase.inbox(r, 1)]
            for r in receivers
        }

    def test_soa_store_replays_reference_deposit_order(self):
        assert caching_enabled()
        net, phase = self._phase()
        assert type(phase.transport) is SoATransport
        self._send_pattern(net, phase)
        warm = self._orders(phase, (1, 3, 5))
        with disabled():
            net_ref, phase_ref = self._phase()
            assert type(phase_ref.transport) is not SoATransport
            self._send_pattern(net_ref, phase_ref)
            reference = self._orders(phase_ref, (1, 3, 5))
        assert warm == reference
        assert warm[3] == [(2, 1), (4, 1), (2, 2)]

    def test_arrival_map_iterates_every_receiver(self):
        net, phase = self._phase()
        self._send_pattern(net, phase)
        arrived = phase.arrival_map(1)
        assert sorted(arrived) == [1, 3, 5]
        assert all(arrived[r] for r in arrived)
        assert 7 not in arrived
        with pytest.raises(KeyError):
            arrived[7]

    def test_multi_region_store_replays_reference_deposit_order(self, monkeypatch):
        # Force the region-partitioned store on an 8-id topology (3
        # regions instead of the automatic 1) and replay against the
        # reference transport at zero tolerance: per receiver, frames
        # must come back in the exact reference deposit order even when
        # senders straddle region boundaries.
        assert caching_enabled()
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "3")
        net, phase = self._phase()
        assert type(phase.transport) is SoATransport
        self._send_pattern(net, phase)
        warm = self._orders(phase, (1, 3, 5))
        monkeypatch.delenv("REPRO_DELIVERY_REGIONS")
        with disabled():
            net_ref, phase_ref = self._phase()
            assert type(phase_ref.transport) is not SoATransport
            self._send_pattern(net_ref, phase_ref)
            reference = self._orders(phase_ref, (1, 3, 5))
        assert warm == reference

    def test_multi_region_full_execution_bit_identical(self, monkeypatch):
        # End-to-end with the fanout forced multi-region: metrics must
        # stay byte-identical to the cache-disabled reference.
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "4")
        clear_caches()
        out = reference_equality("grid", 100, executions=2)
        assert out["metrics_equal"] == 1.0


def _square(x):
    # Module-level so the fork pool can pickle it.
    return x * x


# ----------------------------------------------------------------------
# Region sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_regions_cover_contiguously(self):
        parts = regions(10, 3)
        assert parts == [(0, 4), (4, 7), (7, 10)]

    def test_regions_edge_cases(self):
        assert regions(0, 4) == []
        assert regions(1, 4) == [(0, 1)]  # singleton: one region, no empties
        assert regions(3, 8) == [(0, 1), (1, 2), (2, 3)]  # shards > items
        assert regions(5, 0) == []

    def test_shard_count_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_SHARDS", "3")
        assert shard_count(1_000_000) == 3
        monkeypatch.setenv("REPRO_BUILD_SHARDS", "1")
        assert shard_count(1_000_000) == 1
        monkeypatch.delenv("REPRO_BUILD_SHARDS")
        assert shard_count(10) == 1  # below the auto-shard minimum

    def test_fork_map_matches_inline(self):
        args = list(range(7))
        assert fork_map(_square, args, shards=1) == [x * x for x in args]
        assert fork_map(_square, args, shards=4) == [x * x for x in args]

    def test_delivery_region_geometry_auto(self):
        # Below the 20k-id threshold the store stays unpartitioned.
        assert delivery_region_geometry(0) == (1, 1)
        assert delivery_region_geometry(100) == (100, 1)
        assert delivery_region_geometry(19_999) == (19_999, 1)
        # At scale: one region per 20k ids, capped at 16.
        assert delivery_region_geometry(100_000) == (20_000, 5)
        assert delivery_region_geometry(1_000_000) == (62_500, 16)

    def test_delivery_region_geometry_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "5")
        assert delivery_region_geometry(100) == (20, 5)
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "1")
        assert delivery_region_geometry(100_000) == (100_000, 1)
        # More regions than ids clamps to one region per id.
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "64")
        assert delivery_region_geometry(8) == (1, 8)
        monkeypatch.setenv("REPRO_DELIVERY_REGIONS", "junk")
        assert delivery_region_geometry(100) == (100, 1)


# ----------------------------------------------------------------------
# Ring table vs per-object rings
# ----------------------------------------------------------------------
class TestRingTable:
    SECRET = b"soa-parity-secret"

    def _config(self):
        return small_test_config(pool_size=200, ring_size=40).keys

    def test_rows_match_reference_sampler(self):
        config = self._config()
        table = RingTable(self.SECRET, num_nodes=12, config=config)
        for sensor_id in range(1, 12):
            seed = ring_seed(self.SECRET, sensor_id, cache=False)
            reference = ring_indices_from_seed(seed, config, cache=False)
            assert table.row_list(sensor_id) == list(reference)
            assert all(isinstance(i, int) for i in table.row_list(sensor_id))

    def test_intersect_and_holds(self):
        config = self._config()
        table = RingTable(self.SECRET, num_nodes=12, config=config)
        a, b = set(table.row_list(3)), set(table.row_list(7))
        assert table.intersect(3, 7) == tuple(sorted(a & b))
        for index in sorted(a)[:5]:
            assert table.holds(3, index)
        assert not table.holds(3, min(set(range(200)) - a))

    def test_bulk_edge_keys_match_per_edge(self):
        config = self._config()
        table = RingTable(self.SECRET, num_nodes=12, config=config)
        heads = [0, 1, 2, 5]
        tails = [3, 2, 9, 11]
        bulk = table.edge_keys(heads, tails).tolist()
        for position, (a, b) in enumerate(zip(heads, tails)):
            if a == 0:
                expected = table.row_list(b)[0]
            elif b == 0:
                expected = table.row_list(a)[0]
            else:
                shared = table.intersect(a, b)
                expected = shared[0] if shared else -1
            assert bulk[position] == expected


# ----------------------------------------------------------------------
# Revocation parity: array-backed state vs dict backend
# ----------------------------------------------------------------------
class TestRevocationParity:
    def _pair(self, theta, cascade):
        from repro.keys.revocation import RevocationState

        config = small_test_config(pool_size=60, ring_size=12).keys
        table = RingTable(b"revocation-parity", num_nodes=10, config=config)
        array_state = RingTableRevocationState(table, theta=theta, cascade=cascade)
        rings = {s: tuple(table.row_list(s)) for s in range(1, 10)}
        dict_state = RevocationState(rings, theta=theta, cascade=cascade)
        return array_state, dict_state

    @pytest.mark.parametrize("cascade", [False, True])
    def test_event_logs_identical(self, cascade):
        array_state, dict_state = self._pair(theta=3, cascade=cascade)
        script = list(dict_state._rings[1][:4]) + list(dict_state._rings[2][:2])
        for index in script:
            assert array_state.revoke_key(index) == dict_state.revoke_key(index)
        assert array_state.revoke_sensor(5) == dict_state.revoke_sensor(5)
        assert array_state.log == dict_state.log
        assert array_state.revoked_keys == dict_state.revoked_keys
        assert array_state.revoked_sensors == dict_state.revoked_sensors
        for sensor in range(1, 10):
            assert array_state.revoked_ring_count(sensor) == dict_state.revoked_ring_count(sensor)
            assert array_state.exposed_ring_count(sensor) == dict_state.exposed_ring_count(sensor)
        assert array_state.threshold_pending() == dict_state.threshold_pending()

    def test_holders_identical(self):
        array_state, dict_state = self._pair(theta=None, cascade=False)
        for index in range(60):
            assert array_state.holders_of(index) == dict_state.holders_of(index)
            assert all(isinstance(s, int) for s in array_state.holders_of(index))


# ----------------------------------------------------------------------
# Cache autosizing and the large-build ring-cache bypass
# ----------------------------------------------------------------------
class TestCacheSizing:
    def test_autosize_grows_and_never_shrinks(self):
        applied = autosize_caches(5_000, pool_size=16_384)
        assert applied["hmac-keyed-states"] >= 5_000 + 2048
        # Power-of-two rounded.
        assert all(size & (size - 1) == 0 for size in applied.values())
        # Grow-only: a smaller deployment later keeps the larger sizing.
        again = autosize_caches(10, pool_size=10)
        for name, size in applied.items():
            assert again.get(name, size) >= size

    def test_autosized_build_stops_hmac_evictions(self):
        clear_caches()
        deployment = build_deployment(
            config=small_test_config(depth_bound=30, pool_size=2_048, ring_size=60),
            topology=grid_topology(12, 12),
            seed=5,
        )
        readings = {i: 1.0 + i for i in deployment.topology.sensor_ids}
        result = VMATProtocol(deployment.network).execute(MinQuery(), readings)
        assert result.produced_result
        stats = cache_stats()["hmac-keyed-states"]
        assert stats["evictions"] == 0
        assert stats["hits"] > 0

    def test_ring_cache_fit_threshold(self):
        from repro.keys.ring import _RING_SELECTIONS

        assert ring_caches_fit(_RING_SELECTIONS.maxsize)
        assert not ring_caches_fit(_RING_SELECTIONS.maxsize + 1)

    def test_uncached_ring_derivation_matches_cached(self):
        clear_caches()
        config = small_test_config(pool_size=300, ring_size=25).keys
        cached_seed = ring_seed(b"bypass-parity", 4)
        direct_seed = ring_seed(b"bypass-parity", 4, cache=False)
        assert cached_seed == direct_seed
        assert ring_indices_from_seed(direct_seed, config, cache=False) == (
            ring_indices_from_seed(cached_seed, config)
        )

    def test_resize_evicts_down_and_validates(self):
        cache = LRUCache("soa-test-resize", maxsize=8)
        for i in range(8):
            cache.put(i, i)
        cache.resize(2)
        assert len(cache.view()) == 2
        assert cache.evictions == 6
        with pytest.raises(ConfigError):
            cache.resize(0)


# ----------------------------------------------------------------------
# Column-kernel gating: every inline run, honest or attacked
# ----------------------------------------------------------------------
class TestColumnGating:
    """`columns_enabled` pins which runs may take the SoA interval loops.

    The hybrid kernel covers every inline configuration: attacked runs
    stay columnar (adversary hooks mutate only their own
    MaliciousNodeState rows and inject through the shared transport),
    and tracer attachment stays columnar too (the transmit fast path
    emits the identical trace event from scalars).  Only a service
    driver or the cache-disable switch routes a phase through the
    object reference loops.  These tests pin the gate in both
    directions plus the bit-identity consequence: an attacked run
    behaves identically whether the columns carried it or the perf
    layer was disabled entirely.
    """

    def _deployment(self, malicious=frozenset()):
        return build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(10),
            malicious_ids=set(malicious),
            seed=13,
        )

    def test_honest_inline_run_engages_columns(self):
        from repro.core.phase_state import columns_enabled

        assert caching_enabled()
        network = self._deployment().network
        assert columns_enabled(network, None)

    def test_columns_cover_attacked_runs(self):
        from repro.adversary import Adversary, make_strategy
        from repro.core.phase_state import columns_enabled

        network = self._deployment(malicious={4}).network
        adversary = Adversary(network, make_strategy("drop-minimum"), seed=13)
        assert columns_enabled(network, adversary)

    def test_columns_cover_traced_runs(self):
        from repro.core.phase_state import columns_enabled
        from repro.tracing import Tracer

        network = self._deployment().network
        Tracer.attach(network)
        try:
            assert columns_enabled(network, None)
        finally:
            network.tracer = None

    def test_disable_switch_and_driver_disengage_columns(self):
        from repro.core.phase_state import columns_enabled

        network = self._deployment().network
        with disabled():
            assert not columns_enabled(network, None)
        assert columns_enabled(network, None)
        network.honest_driver = object()  # service seam: state lives off-process
        try:
            assert not columns_enabled(network, None)
        finally:
            network.honest_driver = None

    def _attacked_metrics(self):
        from repro.adversary import Adversary, make_strategy

        deployment = self._deployment(malicious={4})
        network = deployment.network
        adversary = Adversary(network, make_strategy("drop-minimum"), seed=13)
        protocol = VMATProtocol(network, adversary=adversary)
        readings = {i: 100.0 + i for i in deployment.topology.sensor_ids}
        readings[7] = 1.0
        outcomes = [protocol.execute(MinQuery(), readings).outcome.value for _ in range(2)]
        return outcomes, network.metrics.to_dict()

    def test_attacked_run_bit_identical_warm_vs_disabled(self):
        clear_caches()
        warm_outcomes, warm_metrics = self._attacked_metrics()
        with disabled():
            ref_outcomes, ref_metrics = self._attacked_metrics()
        assert warm_outcomes == ref_outcomes
        assert warm_metrics == ref_metrics


# ----------------------------------------------------------------------
# Adversarial bit-identity matrix: zoo x tracer x topology
# ----------------------------------------------------------------------
class TestAdversarialBitIdentityMatrix:
    """The hybrid kernel's equality contract under active adversaries.

    Every cell runs the same two-execution campaign twice — warm column
    kernel, then with every cache disabled (the object reference path)
    — and asserts outcome sequence, ``Metrics.to_dict()`` and, when a
    tracer is attached, the full event stream are equal.  The matrix
    spans a single-node zoo strategy (relay-drop) and a colluding one
    (cover-accomplice), tracer on/off, and line/grid topologies — the
    configurations ISSUE 10 moved onto the columns.
    """

    def _run(self, strategy, topo, traced, seed=17):
        from repro.adversary import Adversary, make_strategy
        from repro.tracing import Tracer

        topology = line_topology(10) if topo == "line" else grid_topology(4, 4)
        deployment = build_deployment(
            config=small_test_config(depth_bound=20),
            topology=topology,
            malicious_ids={3, 5},  # cover-accomplice needs >= 2 colluders
            seed=seed,
        )
        network = deployment.network
        adversary = Adversary(network, make_strategy(strategy), seed=seed)
        tracer = Tracer.attach(network) if traced else None
        protocol = VMATProtocol(network, adversary=adversary)
        readings = {i: 50.0 + i for i in deployment.topology.sensor_ids}
        outcomes = [
            protocol.execute(MinQuery(), readings).outcome.value for _ in range(2)
        ]
        trace = [(e.kind, e.fields) for e in tracer] if tracer is not None else None
        return outcomes, network.metrics.to_dict(), trace

    @pytest.mark.parametrize("topo", ["line", "grid"])
    @pytest.mark.parametrize("traced", [False, True], ids=["untraced", "traced"])
    @pytest.mark.parametrize("strategy", ["relay-drop", "cover-accomplice"])
    def test_warm_matches_disabled(self, strategy, traced, topo):
        clear_caches()
        warm = self._run(strategy, topo, traced)
        with disabled():
            reference = self._run(strategy, topo, traced)
        assert warm[0] == reference[0]  # outcome sequence
        assert warm[1] == reference[1]  # metrics, byte for byte
        assert warm[2] == reference[2]  # trace events (None when untraced)


# ----------------------------------------------------------------------
# Registry backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_warm_build_uses_table_backend(self):
        assert caching_enabled()
        deployment = build_deployment(
            config=small_test_config(depth_bound=10),
            topology=line_topology(6),
            seed=1,
        )
        assert deployment.registry.ring_table is not None
        assert isinstance(deployment.registry.revocation, RingTableRevocationState)

    def test_disabled_build_uses_object_backend(self):
        with disabled():
            deployment = build_deployment(
                config=small_test_config(depth_bound=10),
                topology=line_topology(6),
                seed=1,
            )
            assert deployment.registry.ring_table is None
            assert not isinstance(
                deployment.registry.revocation, RingTableRevocationState
            )

    def test_backends_agree_on_registry_api(self):
        topology = line_topology(6)
        config = small_test_config(depth_bound=10)
        warm = build_deployment(config=config, topology=topology, seed=2).registry
        with disabled():
            ref = build_deployment(config=config, topology=topology, seed=2).registry
        for sensor in range(1, 6):
            assert warm.ring(sensor).indices == ref.ring(sensor).indices
            warm_mat = warm.sensor_deployment_material(sensor)
            ref_mat = ref.sensor_deployment_material(sensor)
            assert warm_mat.ring_indices == ref_mat.ring_indices
            assert warm_mat.sensor_key == ref_mat.sensor_key
            assert warm_mat.all_keys == ref_mat.all_keys
        for a in range(6):
            for b in range(a + 1, 6):
                assert warm.shared_key_indices(a, b) == ref.shared_key_indices(a, b)
                assert warm.edge_key_index(a, b) == ref.edge_key_index(a, b)
