"""Attacks on COUNT/SUM queries: the multi-instance paths of the
veto and pinpointing machinery (instances > 0, per-instance predicates,
synopsis verification at the base station)."""

from __future__ import annotations

import pytest

from repro import (
    CountQuery,
    ExecutionOutcome,
    SumQuery,
    VMATProtocol,
    build_deployment,
    small_test_config,
)
from repro.adversary import Adversary, DropMinimumStrategy, JunkMinimumStrategy, Strategy
from repro.topology import line_topology

from tests.conftest import assert_only_malicious_revoked

M = 24  # synopses per query (small for speed, large enough to matter)


def deployment(malicious, seed=19):
    return build_deployment(
        config=small_test_config(depth_bound=12, num_synopses=M),
        topology=line_topology(8),
        malicious_ids=malicious,
        seed=seed,
    )


def count_query():
    return CountQuery(predicate=lambda r: r > 0.5, num_synopses=M)


class TestDroppedSynopses:
    def test_dropping_synopses_triggers_instance_veto(self):
        """A dropper suppresses the downstream synopses; some instance's
        true minimum lives behind it, its owner vetoes with that
        instance, and pinpointing walks the instance-aware predicates."""
        dep = deployment({3})
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=19)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 1.0 for i in dep.topology.sensor_ids}  # all satisfy
        result = protocol.execute(count_query(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert result.revocations
        assert_only_malicious_revoked(dep, {3})

    def test_count_session_converges_to_accurate_estimate(self):
        dep = deployment({3})
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=19)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 1.0 for i in dep.topology.sensor_ids}
        session = protocol.run_session(count_query(), readings, max_executions=100)
        assert session.final_estimate is not None
        # After the dropper's boundary keys die, the surviving component
        # answers; the count reflects whoever is still reachable.
        assert session.final_estimate > 0
        assert_only_malicious_revoked(dep, {3})

    def test_sum_query_attack(self):
        dep = deployment({3})
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=19)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: float(i) for i in dep.topology.sensor_ids}
        result = protocol.execute(SumQuery(num_synopses=M), readings)
        assert result.produced_result or result.revocations
        assert_only_malicious_revoked(dep, {3})


class TestJunkSynopses:
    def test_forged_synopsis_detected_and_pinpointed(self):
        """Junk on every instance: the per-instance minimum check at the
        base station rejects the forged value (no legal reading inverts
        to it) and junk-triggered pinpointing runs with that instance."""
        dep = deployment({3})
        adv = Adversary(
            dep.network, JunkMinimumStrategy(junk_value=1e-9, predtest="deny"), seed=19
        )
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 1.0 for i in dep.topology.sensor_ids}
        result = protocol.execute(count_query(), readings)
        assert result.outcome is ExecutionOutcome.JUNK_AGGREGATION_PINPOINT
        assert result.revocations
        assert_only_malicious_revoked(dep, {3})

    def test_valid_looking_wrong_reading_synopsis_rejected(self):
        """The sharper cheat: a synopsis that DOES invert — but to a
        reading outside the count domain (reading 5000 instead of the
        indicator 1).  The per-instance domain restriction kills it."""
        from repro.core.synopses import synopsis_value

        class DomainCheat(Strategy):
            def agg_select(self, adv, ctx, node_id):
                state = adv.state[node_id]
                return [
                    adv.sign_reading(
                        node_id,
                        synopsis_value(ctx.nonce, node_id, m.instance, 5_000),
                        ctx.nonce,
                        instance=m.instance,
                    )
                    for m in state.own_messages
                ]

        dep = deployment({3})
        adv = Adversary(dep.network, DomainCheat(), seed=19)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 1.0 for i in dep.topology.sensor_ids}
        result = protocol.execute(count_query(), readings)
        # The forged synopses are tiny (rate 5000), so they win the
        # minimum — and fail the domain check: junk pinpointing fires.
        assert result.outcome is ExecutionOutcome.JUNK_AGGREGATION_PINPOINT
        assert_only_malicious_revoked(dep, {3})

    def test_self_reported_reading_is_allowed(self):
        """The in-model behaviour: a malicious sensor reporting a LEGAL
        reading for itself (predicate satisfied, reading 1) passes all
        checks — secure aggregation does not police self-reports."""
        dep = deployment({3})
        adv = Adversary(dep.network, None, seed=19)  # honest mimicry
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 1.0 if i != 3 else 0.0 for i in dep.topology.sensor_ids}
        # Sensor 3 reports 0 (not detecting): truth counts 6 of 7.
        result = protocol.execute(count_query(), readings)
        assert result.produced_result
