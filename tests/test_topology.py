"""Topology model and generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import (
    Topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
    tree_topology,
)
from repro.topology.generators import recommended_radius


class TestTopology:
    def test_add_and_query_edges(self):
        topo = Topology(4, [(0, 1), (1, 2)])
        assert topo.has_edge(0, 1) and topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)
        assert topo.neighbors(1) == frozenset({0, 2})
        assert topo.degree(1) == 2

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(3, [(1, 1)])

    def test_rejects_unknown_node(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 5)])

    def test_sensor_ids_exclude_base_station(self):
        topo = Topology(4, [(0, 1)])
        assert topo.sensor_ids == [1, 2, 3]

    def test_depths_bfs(self):
        topo = line_topology(5)
        depths = topo.depths()
        assert depths == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_depths_respect_exclusions(self):
        # 0-1-2 plus 0-3-2: cutting 1 forces the longer route.
        topo = Topology(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        full = topo.depths()
        assert full[2] == 2
        without_1 = topo.depths(include={0, 2, 3})
        assert without_1[2] == 2  # via 3
        without_both = topo.depths(include={0, 2})
        assert 2 not in without_both  # unreachable

    def test_network_depth(self):
        assert line_topology(6).network_depth() == 5
        assert star_topology(10).network_depth() == 1

    def test_network_depth_excluding_malicious(self):
        topo = Topology(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        assert topo.network_depth(exclude={1}) == 2

    def test_is_connected(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        assert not topo.is_connected()
        assert topo.is_connected(exclude={2, 3})

    def test_connected_component(self):
        topo = Topology(5, [(0, 1), (1, 2), (3, 4)])
        assert topo.connected_component() == {0, 1, 2}

    def test_subgraph_filters_edges(self):
        topo = line_topology(5)
        sub = topo.subgraph(lambda a, b: (a, b) != (1, 2))
        assert not sub.has_edge(1, 2)
        assert sub.has_edge(0, 1)

    def test_num_edges(self):
        assert grid_topology(3, 3).num_edges() == 12


class TestGenerators:
    def test_line(self):
        topo = line_topology(4)
        assert topo.num_edges() == 3
        assert topo.degree(0) == 1

    def test_star(self):
        topo = star_topology(6)
        assert topo.degree(0) == 5
        assert all(topo.degree(i) == 1 for i in range(1, 6))

    def test_grid_positions_and_connectivity(self):
        topo = grid_topology(4, 5)
        assert topo.num_nodes == 20
        assert topo.is_connected()
        assert topo.positions[0] == (0.0, 0.0)

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(TopologyError):
            grid_topology(0, 5)

    def test_tree_binary(self):
        topo = tree_topology(7, branching=2)
        assert topo.is_connected()
        assert topo.neighbors(0) == frozenset({1, 2})
        assert topo.network_depth() == 2

    def test_geometric_is_connected_and_deterministic(self):
        a = random_geometric_topology(60, recommended_radius(60), seed=5)
        b = random_geometric_topology(60, recommended_radius(60), seed=5)
        assert a.is_connected()
        assert sorted(a.edges()) == sorted(b.edges())

    def test_geometric_seeds_differ(self):
        a = random_geometric_topology(60, recommended_radius(60), seed=1)
        b = random_geometric_topology(60, recommended_radius(60), seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_geometric_raises_when_radius_hopeless(self):
        with pytest.raises(TopologyError):
            random_geometric_topology(100, 0.001, seed=0, max_attempts=3)

    def test_geometric_edges_respect_radius(self):
        radius = 0.3
        topo = random_geometric_topology(30, radius, seed=3)
        for a, b in topo.edges():
            (x1, y1), (x2, y2) = topo.positions[a], topo.positions[b]
            assert (x1 - x2) ** 2 + (y1 - y2) ** 2 <= radius**2 + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 40))
    def test_line_depth_is_n_minus_1(self, n):
        assert line_topology(n).network_depth() == n - 1
