"""NetworkX interop, centrality-based adversary placement, clusters."""

from __future__ import annotations

import pytest

from repro import ExecutionOutcome, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy
from repro.errors import TopologyError
from repro.topology import (
    Topology,
    betweenness_ranking,
    cluster_topology,
    disjoint_paths_to_base,
    from_networkx,
    grid_topology,
    line_topology,
    most_central_sensors,
    to_networkx,
)

from tests.conftest import assert_only_malicious_revoked


class TestNetworkxBridge:
    def test_round_trip(self):
        topo = grid_topology(3, 4)
        back = from_networkx(to_networkx(topo))
        assert sorted(back.edges()) == sorted(topo.edges())
        assert back.positions == topo.positions

    def test_from_networkx_requires_consecutive_ids(self):
        import networkx

        graph = networkx.Graph()
        graph.add_edge(1, 5)
        with pytest.raises(TopologyError):
            from_networkx(graph)


class TestCentrality:
    def test_line_center_is_most_central(self):
        ranking = betweenness_ranking(line_topology(9))
        assert ranking[0][0] == 4  # the midpoint carries every path

    def test_most_central_sensors_count(self):
        central = most_central_sensors(grid_topology(4, 4), 3)
        assert len(central) == 3
        assert 0 not in central  # the base station is never a candidate

    def test_negative_count_rejected(self):
        with pytest.raises(TopologyError):
            most_central_sensors(line_topology(5), -1)

    def test_disjoint_paths(self):
        assert disjoint_paths_to_base(line_topology(5), 4) == 1
        assert disjoint_paths_to_base(grid_topology(4, 4), 15) == 2
        with pytest.raises(TopologyError):
            disjoint_paths_to_base(line_topology(5), 0)

    def test_central_compromise_is_the_strong_attack(self):
        """Placing the dropper at the highest-betweenness sensor must
        intercept the minimum on a line (it IS the only path)."""
        topo = line_topology(9)
        victim = most_central_sensors(topo, 1)[0]
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=topo,
            malicious_ids={victim},
            seed=6,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=6)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 40.0 + i for i in topo.sensor_ids}
        readings[8] = 1.0
        result = protocol.execute(MinQuery(), readings)
        assert result.outcome is ExecutionOutcome.VETO_PINPOINT
        assert_only_malicious_revoked(dep, {victim})


class TestClusterTopology:
    def test_shape(self):
        topo = cluster_topology(3, 6, seed=2)
        assert topo.num_nodes == 19
        assert topo.is_connected()

    def test_heads_form_the_backbone(self):
        topo = cluster_topology(3, 5, seed=2)
        heads = [1, 6, 11]
        assert topo.has_edge(0, heads[0])
        assert topo.has_edge(heads[0], heads[1])
        assert topo.has_edge(heads[1], heads[2])

    def test_head_is_a_cut_vertex(self):
        topo = cluster_topology(2, 5, seed=2)
        # Members of the second cluster reach the BS only through heads.
        member = 8  # second cluster member (head of cluster 1 is 6)
        assert disjoint_paths_to_base(topo, member) == 1

    def test_protocol_runs_on_clusters(self):
        topo = cluster_topology(3, 5, seed=2)
        dep = build_deployment(
            config=small_test_config(depth_bound=8), topology=topo, seed=2
        )
        protocol = VMATProtocol(dep.network)
        readings = {i: 20.0 + i for i in topo.sensor_ids}
        readings[12] = 1.0
        result = protocol.execute(MinQuery(), readings)
        assert result.produced_result and result.estimate == 1.0

    def test_compromised_head_attack_and_recovery(self):
        topo = cluster_topology(2, 5, seed=2)
        head = 6  # second cluster's head: a cut vertex
        dep = build_deployment(
            config=small_test_config(depth_bound=8),
            topology=topo,
            malicious_ids={head},
            seed=2,
        )
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=2)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 20.0 + i for i in topo.sensor_ids}
        readings[9] = 1.0  # behind the compromised head
        session = protocol.run_session(MinQuery(), readings, max_executions=100)
        assert session.final_estimate is not None
        assert_only_malicious_revoked(dep, {head})

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            cluster_topology(0, 5)
