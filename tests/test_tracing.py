"""Structured execution traces."""

from __future__ import annotations

import json

import pytest

from repro import MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy
from repro.errors import ReproError
from repro.topology import line_topology
from repro.tracing import Tracer


class TestTracerBasics:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record("alpha", x=1)
        tracer.record("beta", x=2)
        tracer.record("alpha", x=3)
        assert len(tracer) == 3
        assert [e.fields["x"] for e in tracer.of_kind("alpha")] == [1, 3]
        assert tracer.counts() == {"alpha": 2, "beta": 1}

    def test_where_filters_on_fields(self):
        tracer = Tracer()
        tracer.record("tx", sender=1, receiver=2)
        tracer.record("tx", sender=1, receiver=3)
        assert len(tracer.where("tx", sender=1)) == 2
        assert len(tracer.where("tx", receiver=3)) == 1
        assert tracer.where("tx", receiver=9) == []

    def test_capacity_drops_excess(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record("e", i=i)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        tracer.record("tx", sender=1, verified=True, note="hello")
        rows = Tracer.from_jsonl(tracer.to_jsonl())
        assert rows == [
            {"sequence": 0, "kind": "tx", "sender": 1, "verified": True, "note": "hello"}
        ]

    def test_clear(self):
        tracer = Tracer()
        tracer.record("x")
        tracer.clear()
        assert len(tracer) == 0


class TestProtocolTracing:
    def test_honest_execution_emits_expected_kinds(self):
        dep = build_deployment(num_nodes=15, seed=4)
        tracer = Tracer.attach(dep.network)
        protocol = VMATProtocol(dep.network)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        counts = tracer.counts()
        assert counts["execution-start"] == 1
        assert counts["execution-end"] == 1
        assert counts["authenticated-broadcast"] >= 3  # tree, query, confirm
        assert counts["transmission"] > 0
        end = tracer.of_kind("execution-end")[0]
        assert end.fields["outcome"] == "result"

    def test_attack_trace_shows_revocations(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=4,
        )
        tracer = Tracer.attach(dep.network)
        adv = Adversary(dep.network, DropMinimumStrategy(predtest="deny"), seed=4)
        protocol = VMATProtocol(dep.network, adversary=adv)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        readings[7] = 1.0
        protocol.execute(MinQuery(), readings)
        revocations = tracer.of_kind("revocation")
        assert revocations
        assert all("reason" in e.fields for e in revocations)
        end = tracer.of_kind("execution-end")[0]
        assert end.fields["outcome"] == "veto-pinpoint"

    def test_jsonl_round_trip_preserves_counts(self):
        """dump → reload → the per-kind histogram is unchanged."""
        from collections import Counter

        dep = build_deployment(num_nodes=15, seed=4)
        tracer = Tracer.attach(dep.network)
        protocol = VMATProtocol(dep.network)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        assert len(tracer) > 0

        reloaded = Tracer.from_jsonl(tracer.to_jsonl())
        assert len(reloaded) == len(tracer)
        assert Counter(row["kind"] for row in reloaded) == tracer.counts()
        # Sequence numbers and fields survive byte-for-byte.
        by_sequence = {row["sequence"]: row for row in reloaded}
        for event in tracer:
            row = by_sequence[event.sequence]
            assert row["kind"] == event.kind
            for field_name, value in event.fields.items():
                assert row[field_name] == value

    def test_transmission_events_are_verifiable_data(self):
        dep = build_deployment(num_nodes=12, seed=4)
        tracer = Tracer.attach(dep.network)
        protocol = VMATProtocol(dep.network)
        readings = {i: 10.0 + i for i in dep.topology.sensor_ids}
        protocol.execute(MinQuery(), readings)
        for event in tracer.of_kind("transmission"):
            assert event.fields["phase"] in {"tree", "aggregation", "confirmation"}
            assert isinstance(event.fields["verified"], bool)
        # JSON export works on a real trace.
        assert json.loads(tracer.to_jsonl().splitlines()[0])
