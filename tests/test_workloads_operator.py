"""Workload fields and the long-running network operator."""

from __future__ import annotations

import pytest

from repro import CountQuery, MinQuery, VMATProtocol, build_deployment, small_test_config
from repro.adversary import Adversary, DropMinimumStrategy, JunkMinimumStrategy
from repro.errors import ConfigError
from repro.operator import NetworkOperator
from repro.topology import grid_topology, line_topology
from repro.workloads import GradientField, Hotspot, HotspotField, UniformNoiseField

from tests.conftest import assert_only_malicious_revoked


@pytest.fixture
def geo_deployment():
    return build_deployment(num_nodes=30, seed=8)


class TestHotspotField:
    def test_peak_near_hotspot(self, geo_deployment):
        topo = geo_deployment.topology
        # Put the hotspot exactly on a sensor.
        sx, sy = topo.positions[5]
        fld = HotspotField([Hotspot(sx, sy, intensity=80, radius=0.2)], noise=0.0)
        readings = fld.readings(topo)
        assert readings[5] == max(readings.values())
        assert readings[5] == pytest.approx(100.0)  # background 20 + 80

    def test_decay_with_distance(self, geo_deployment):
        topo = geo_deployment.topology
        fld = HotspotField([Hotspot(0.0, 0.0, intensity=50, radius=0.3)], noise=0.0)
        readings = fld.readings(topo)
        by_distance = sorted(
            topo.sensor_ids,
            key=lambda s: topo.positions[s][0] ** 2 + topo.positions[s][1] ** 2,
        )
        assert readings[by_distance[0]] >= readings[by_distance[-1]]

    def test_drift_moves_the_peak(self, geo_deployment):
        topo = geo_deployment.topology
        fld = HotspotField(
            [Hotspot(0.1, 0.5, intensity=80, radius=0.15, drift=(0.2, 0.0))],
            noise=0.0,
        )
        early = fld.readings(topo, epoch=0)
        late = fld.readings(topo, epoch=4)
        assert early != late

    def test_deterministic(self, geo_deployment):
        fld = HotspotField([Hotspot(0.5, 0.5, 10, 0.2)], seed=3)
        a = fld.readings(geo_deployment.topology, epoch=1)
        b = fld.readings(geo_deployment.topology, epoch=1)
        assert a == b

    def test_integer_mode(self, geo_deployment):
        fld = HotspotField([Hotspot(0.5, 0.5, 10, 0.2)], integer=True)
        readings = fld.readings(geo_deployment.topology)
        assert all(v == int(v) for v in readings.values())

    def test_requires_positions(self):
        fld = HotspotField([Hotspot(0.5, 0.5, 10, 0.2)])
        with pytest.raises(ConfigError):
            fld.readings(line_topology(5))


class TestOtherFields:
    def test_gradient_monotone_along_axis(self, geo_deployment):
        topo = geo_deployment.topology
        fld = GradientField(low=0, high=100, axis="x")
        readings = fld.readings(topo)
        left = min(topo.sensor_ids, key=lambda s: topo.positions[s][0])
        right = max(topo.sensor_ids, key=lambda s: topo.positions[s][0])
        assert readings[left] < readings[right]

    def test_gradient_rejects_bad_axis(self):
        with pytest.raises(ConfigError):
            GradientField(axis="z")

    def test_uniform_in_range_and_deterministic(self, geo_deployment):
        fld = UniformNoiseField(low=5, high=9, seed=2)
        readings = fld.readings(geo_deployment.topology, epoch=3)
        assert all(5 <= v <= 9 for v in readings.values())
        assert readings == UniformNoiseField(5, 9, seed=2).readings(
            geo_deployment.topology, epoch=3
        )

    def test_uniform_rejects_inverted_range(self):
        with pytest.raises(ConfigError):
            UniformNoiseField(low=9, high=5)


class TestNetworkOperator:
    def test_honest_epochs_all_answer(self, geo_deployment):
        operator = NetworkOperator(geo_deployment.network)
        fld = UniformNoiseField(10, 50, seed=1)
        records = operator.run_epochs(MinQuery(), fld, num_epochs=4)
        assert all(r.answered for r in records)
        report = operator.health_report()
        assert report.availability == 1.0
        assert report.attacked_epochs == 0
        assert report.total_revoked_keys == 0
        assert report.epochs == 4

    def test_attacked_epochs_recover_and_are_recorded(self):
        dep = build_deployment(
            config=small_test_config(depth_bound=12),
            topology=line_topology(8),
            malicious_ids={3},
            seed=8,
        )
        adv = Adversary(dep.network, JunkMinimumStrategy(predtest="deny"), seed=8)
        operator = NetworkOperator(dep.network, adversary=adv)
        fld = UniformNoiseField(10, 50, seed=1)
        records = operator.run_epochs(MinQuery(), fld, num_epochs=2)
        assert all(r.answered for r in records)  # Theorem 7 per epoch
        assert records[0].attempts > 1  # the attack cost extra executions
        report = operator.health_report()
        assert report.attacked_epochs >= 1
        assert report.total_revoked_keys > 0
        assert_only_malicious_revoked(dep, {3})

    def test_health_report_tracks_population(self):
        dep = build_deployment(num_nodes=20, seed=8)
        operator = NetworkOperator(dep.network)
        operator.run_epoch(MinQuery(), {i: 5.0 for i in dep.topology.sensor_ids})
        report = operator.health_report()
        assert report.surviving_sensors == 19
        assert report.securely_connected == 19

    def test_relative_error_for_count_epochs(self, geo_deployment):
        operator = NetworkOperator(geo_deployment.network)
        fld = UniformNoiseField(0, 100, seed=4)
        query = CountQuery(predicate=lambda r: r > 50, num_synopses=120)
        operator.run_epochs(query, fld, num_epochs=2)
        report = operator.health_report()
        assert "count" in report.mean_relative_error_by_query
        assert report.mean_relative_error_by_query["count"] < 0.5
        assert report.mean_relative_error is not None

    def test_rejects_bad_attempt_limit(self, geo_deployment):
        with pytest.raises(ConfigError):
            NetworkOperator(geo_deployment.network, max_attempts_per_epoch=0)
